//! Table II: number and share of requests per HTTP version, split by
//! CDN / non-CDN — measured from HAR entries of an H3-enabled pass, with
//! CDN membership decided by the LocEdge classifier exactly as in the
//! paper.

use std::fmt;

use h3cdn_browser::ProtocolMode;
use h3cdn_cdn::Vantage;
use serde::Serialize;

use h3cdn::MeasurementCampaign;

/// Counts for one HTTP version row.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct VersionCounts {
    /// CDN requests on this version.
    pub cdn: usize,
    /// Non-CDN requests on this version.
    pub non_cdn: usize,
}

impl VersionCounts {
    /// Total requests on this version.
    pub fn total(&self) -> usize {
        self.cdn + self.non_cdn
    }
}

/// The reproduced Table II.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Table2 {
    /// HTTP/2 row.
    pub h2: VersionCounts,
    /// HTTP/3 row.
    pub h3: VersionCounts,
    /// Other versions (HTTP/1.x) row.
    pub others: VersionCounts,
}

impl Table2 {
    /// Total requests.
    pub fn total(&self) -> usize {
        self.h2.total() + self.h3.total() + self.others.total()
    }

    /// Total CDN requests.
    pub fn cdn_total(&self) -> usize {
        self.h2.cdn + self.h3.cdn + self.others.cdn
    }

    /// Share of all requests on H3.
    pub fn h3_share(&self) -> f64 {
        self.h3.total() as f64 / self.total() as f64
    }

    /// Share of all requests that are CDN-served.
    pub fn cdn_share(&self) -> f64 {
        self.cdn_total() as f64 / self.total() as f64
    }
}

/// Runs an H3-enabled pass over every page from `vantage` and tallies
/// per-protocol request counts.
pub fn run(campaign: &MeasurementCampaign, vantage: Vantage) -> Table2 {
    let mut t = Table2::default();
    for (_site, har) in campaign.visit_all(vantage, ProtocolMode::H3Enabled) {
        for e in &har.entries {
            let is_cdn = e.provider.is_some();
            let row = match e.protocol.as_str() {
                "h2" => &mut t.h2,
                "h3" => &mut t.h3,
                _ => &mut t.others,
            };
            if is_cdn {
                row.cdn += 1;
            } else {
                row.non_cdn += 1;
            }
        }
    }
    t
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total() as f64;
        writeln!(
            f,
            "Table II: requests and share of total per HTTP version (measured, H3-enabled pass)"
        )?;
        writeln!(
            f,
            "{:<10} {:>8} {:>6}  {:>8} {:>6}  {:>8} {:>6}",
            "protocol", "CDN", "%", "nonCDN", "%", "all", "%"
        )?;
        let mut row = |name: &str, c: &VersionCounts| {
            writeln!(
                f,
                "{:<10} {:>8} {:>6.1}  {:>8} {:>6.1}  {:>8} {:>6.1}",
                name,
                c.cdn,
                c.cdn as f64 / total * 100.0,
                c.non_cdn,
                c.non_cdn as f64 / total * 100.0,
                c.total(),
                c.total() as f64 / total * 100.0,
            )
        };
        row("HTTP/2", &self.h2)?;
        row("HTTP/3", &self.h3)?;
        row("Others", &self.others)?;
        writeln!(
            f,
            "{:<10} {:>8} {:>6.1}  {:>8} {:>6.1}  {:>8} {:>6.1}",
            "All",
            self.cdn_total(),
            self.cdn_share() * 100.0,
            self.total() - self.cdn_total(),
            (1.0 - self.cdn_share()) * 100.0,
            self.total(),
            100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::CampaignConfig;

    #[test]
    fn shapes_match_paper_on_a_small_campaign() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(12, 3));
        let t = run(&campaign, Vantage::Utah);
        assert_eq!(t.total(), campaign.corpus().total_requests());
        // Paper: CDN 67 %, H3 32.6 % — small-sample tolerances are loose.
        assert!((t.cdn_share() - 0.67).abs() < 0.12, "cdn {}", t.cdn_share());
        assert!((t.h3_share() - 0.326).abs() < 0.12, "h3 {}", t.h3_share());
        // CDN "Others" must be (near) zero, as in the paper (<0.01 %).
        assert_eq!(t.others.cdn, 0);
        // H2 leads overall.
        assert!(t.h2.total() > t.h3.total());
    }
}
