//! Table III: two webpage groups with different sharing degrees,
//! constructed exactly as in the paper — binary vectors over the shared
//! CDN domains, k-means with k = 2, then consecutive-visit measurements
//! per group.

use std::fmt;

use h3cdn_analysis::{kmeans, mean};
use h3cdn_cdn::Vantage;
use h3cdn_har::plt_reduction_ms;
use h3cdn_web::DomainId;
use serde::Serialize;

use h3cdn::MeasurementCampaign;

/// One group's row of Table III.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Group label (`C_H` or `C_L`).
    pub group: String,
    /// Pages in the group.
    pub pages: usize,
    /// Average number of distinct providers used.
    pub avg_providers: f64,
    /// Average number of shared CDN domains used (the clustering
    /// criterion).
    pub avg_shared_domains: f64,
    /// Average number of resumed connections (H3 consecutive pass).
    pub avg_resumed: f64,
    /// Mean PLT reduction under consecutive visits, ms.
    pub plt_reduction_ms: f64,
}

/// The reproduced Table III.
#[derive(Debug, Clone, Serialize)]
pub struct Table3 {
    /// Number of shared domains used as vector coordinates (paper: 58).
    pub vector_dimensions: usize,
    /// High-sharing group.
    pub high: Table3Row,
    /// Low-sharing group.
    pub low: Table3Row,
}

/// Runs the full Table III pipeline from `vantage`, ignoring the first
/// `warmup` pages of the consecutive pass (ticket-cache warm-up).
pub fn run(campaign: &MeasurementCampaign, vantage: Vantage, warmup: usize) -> Table3 {
    fn wcss(vectors: &[Vec<f64>], assignment: &[usize]) -> f64 {
        let dim = vectors[0].len();
        let mut sums = vec![vec![0.0; dim]; 2];
        let mut counts = [0usize; 2];
        for (v, &c) in vectors.iter().zip(assignment) {
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(v) {
                *s += x;
            }
        }
        for c in 0..2 {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
            }
        }
        vectors
            .iter()
            .zip(assignment)
            .map(|(v, &c)| {
                v.iter()
                    .zip(&sums[c])
                    .map(|(x, m)| (x - m).powi(2))
                    .sum::<f64>()
            })
            .sum()
    }

    let corpus = campaign.corpus();

    // 1. Domains used by at least two pages form the vector coordinates
    //    (the paper removes outlier pages/domains the same way).
    let mut usage: std::collections::BTreeMap<DomainId, usize> = Default::default();
    for page in &corpus.pages {
        for d in page.cdn_domains() {
            if corpus.domains.is_shared(d) {
                *usage.entry(d).or_default() += 1;
            }
        }
    }
    let coords: Vec<DomainId> = usage
        .into_iter()
        .filter(|&(_, n)| n >= 2)
        .map(|(d, _)| d)
        .collect();

    // 2. Binary page vectors and k-means with k = 2.
    let vectors: Vec<Vec<f64>> = corpus
        .pages
        .iter()
        .map(|page| {
            let used = page.cdn_domains();
            coords
                .iter()
                .map(|d| if used.contains(d) { 1.0 } else { 0.0 })
                .collect()
        })
        .collect();
    // k-means with restarts: take the lowest within-cluster sum of
    // squares over several deterministic seeds (rejecting degenerate
    // single-point clusters), i.e. the best solution of the actual
    // k-means objective.
    let assignment = (0..8)
        .map(|s| kmeans(&vectors, 2, 100, corpus.spec.seed.wrapping_add(s)))
        .filter(|a| {
            let ones = a.iter().filter(|&&c| c == 1).count();
            ones.min(a.len() - ones) >= vectors.len() / 10
        })
        .min_by(|a, b| wcss(&vectors, a).total_cmp(&wcss(&vectors, b)))
        .unwrap_or_else(|| kmeans(&vectors, 2, 100, corpus.spec.seed));

    // 3. Consecutive passes, reductions per page.
    let (h2, h3) = campaign.consecutive_pass(vantage);

    let row = |cluster: usize, label: &str| {
        // Cluster composition (providers, shared domains) is a property
        // of the whole cluster; timing statistics use only post-warmup
        // pages so the ticket cache is comparable.
        let all_members: Vec<usize> = (0..corpus.pages.len())
            .filter(|&i| assignment[i] == cluster)
            .collect();
        let members: Vec<usize> = all_members
            .iter()
            .copied()
            .filter(|&i| i >= warmup.max(1))
            .collect();
        let shared: Vec<f64> = all_members
            .iter()
            .map(|&i| vectors[i].iter().sum::<f64>())
            .collect();
        let providers: Vec<f64> = all_members
            .iter()
            .map(|&i| corpus.pages[i].providers_used().len() as f64)
            .collect();
        let resumed: Vec<f64> = members
            .iter()
            .map(|&i| h3[i].resumed_connection_count() as f64)
            .collect();
        let reds: Vec<f64> = members
            .iter()
            .map(|&i| plt_reduction_ms(&h2[i], &h3[i]))
            .collect();
        Table3Row {
            group: label.to_string(),
            pages: members.len(),
            avg_providers: mean(&providers),
            avg_shared_domains: mean(&shared),
            avg_resumed: mean(&resumed),
            plt_reduction_ms: mean(&reds),
        }
    };

    let a = row(0, "A");
    let b = row(1, "B");
    // The high-sharing group is the one using more shared domains — the
    // quantity the k-means vectors encode.
    let (mut high, mut low) = if a.avg_shared_domains >= b.avg_shared_domains {
        (a, b)
    } else {
        (b, a)
    };
    high.group = "C_H (high sharing)".to_string();
    low.group = "C_L (low sharing)".to_string();
    Table3 {
        vector_dimensions: coords.len(),
        high,
        low,
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table III: PLT reduction of two sharing-degree groups ({}-dim domain vectors)",
            self.vector_dimensions
        )?;
        writeln!(
            f,
            "{:<20} {:>6} {:>12} {:>12} {:>12} {:>14}",
            "group", "pages", "avg prov.", "avg shared", "avg resumed", "PLT red."
        )?;
        for r in [&self.high, &self.low] {
            writeln!(
                f,
                "{:<20} {:>6} {:>12.2} {:>12.2} {:>12.2} {:>12.2}ms",
                r.group,
                r.pages,
                r.avg_providers,
                r.avg_shared_domains,
                r.avg_resumed,
                r.plt_reduction_ms
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::{CampaignConfig, MeasurementCampaign};

    #[test]
    fn kmeans_groups_separate_by_sharing_degree() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(40, 55));
        let t = run(&campaign, Vantage::Utah, 8);
        assert!(t.vector_dimensions > 10);
        // The clustering criterion itself must separate: C_H uses more
        // shared domains and (like the paper's 4.16 vs 2.58) more
        // providers.
        assert!(t.high.avg_shared_domains > t.low.avg_shared_domains);
        assert!(
            t.high.avg_providers > t.low.avg_providers,
            "C_H providers {} vs C_L {}",
            t.high.avg_providers,
            t.low.avg_providers
        );
        // Both groups are measured (no NaNs) and resume sessions.
        assert!(t.high.avg_resumed > 0.0 && t.low.avg_resumed > 0.0);
        assert!(t.high.plt_reduction_ms.is_finite());
        assert!(t.low.plt_reduction_ms.is_finite());
    }
}
