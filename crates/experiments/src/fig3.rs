//! Fig. 3: CCDF of the percentage of CDN resources on each webpage.

use std::fmt;

use h3cdn_analysis::ccdf_points;
use serde::Serialize;

use h3cdn::MeasurementCampaign;

/// The reproduced Fig. 3 curve.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3 {
    /// `(cdn_percentage, P[X > x])` points, ascending in x.
    pub points: Vec<(f64, f64)>,
    /// Fraction of pages with more than 50 % CDN resources (the paper's
    /// headline: 75 %).
    pub over_half: f64,
}

/// Computes the CCDF from the corpus composition.
pub fn run(campaign: &MeasurementCampaign) -> Fig3 {
    let fractions: Vec<f64> = campaign
        .corpus()
        .pages
        .iter()
        .map(|p| p.cdn_fraction() * 100.0)
        .collect();
    let over_half = fractions.iter().filter(|&&x| x > 50.0).count() as f64 / fractions.len() as f64;
    Fig3 {
        points: ccdf_points(&fractions),
        over_half,
    }
}

impl Fig3 {
    /// CCDF evaluated at `x` percent: `P[X > x]`.
    pub fn ccdf_at(&self, x: f64) -> f64 {
        // Points are (sample, P[X > sample]) ascending; the CCDF at x is
        // the value at the largest sample ≤ x (1.0 before the first).
        let mut last = 1.0_f64;
        for &(px, p) in &self.points {
            if px > x {
                return last;
            }
            last = p;
        }
        last
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 3: CCDF of CDN-resource percentage per page")?;
        writeln!(f, "{:>8} {:>8}", "x (%)", "P[X>x]")?;
        for x in [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0] {
            writeln!(f, "{:>8.0} {:>8.3}", x, self.ccdf_at(x))?;
        }
        writeln!(
            f,
            "pages with >50% CDN resources: {:.1}%",
            self.over_half * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::{CampaignConfig, MeasurementCampaign};

    #[test]
    fn paper_scale_ccdf_at_half_is_75_percent() {
        let campaign = MeasurementCampaign::new(CampaignConfig::default());
        let fig = run(&campaign);
        assert!(
            (fig.over_half - 0.75).abs() < 0.06,
            "CCDF(50%) = {}",
            fig.over_half
        );
        // Monotone non-increasing curve.
        for w in fig.points.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
