//! Population-scale campaign: Fig. 2–4's composition statistics at
//! 10⁵–10⁶ pages instead of the paper's 325.
//!
//! The paper's crawl-scale figures (provider market share, CDN-share
//! CCDF, sharing degrees) are ratios — they stabilise long before 325
//! pages but their *tails* (the heaviest pages, the rarest provider
//! mixes) only populate at crawl scales the original measurement could
//! not afford. This module runs the seeded synthetic generator
//! ([`h3cdn_web::population`]) over a whole synthetic Internet while
//! holding memory to O(streaming window), not O(pages):
//!
//! * workers generate [`PageRecord`]s through the constant-memory
//!   streaming runner ([`h3cdn::run_keyed_streaming`]), which delivers
//!   results to the sink in site order while buffering at most
//!   `window` completed records;
//! * the sink folds every record into a [`PopulationAggregator`] —
//!   rolling moments ([`Welford`]) and fixed-grid [`QuantileSketch`]es,
//!   all O(1) per record — and, when the run is checkpointed, appends
//!   the record to a sharded binary journal
//!   ([`h3cdn::ShardedJournal`]) for crash-safe resume;
//! * on `--resume`, journaled records are decoded once and merge-joined
//!   (by site index) with the freshly generated remainder, so the
//!   aggregate is bit-identical to an uninterrupted run.
//!
//! The emitted [`PopulationSummary`] is a pure function of the
//! [`PopulationSpec`] — independent of worker count, window size and
//! resume splits — which is exactly what the CI smoke gate compares.

use std::collections::BTreeMap;

use h3cdn::persist::RunDir;
use h3cdn::{run_keyed_streaming, RunnerConfig, ShardedJournal, StreamStats};
use h3cdn_analysis::{linear_fit, QuantileSketch, Welford};
use h3cdn_cdn::Provider;
use h3cdn_web::population::{SIZE_HIST_BUCKETS_PER_OCTAVE, SIZE_HIST_MAX_EXP, SIZE_HIST_MIN_EXP};
use h3cdn_web::{page_record, PageRecord, PopulationSpec};
use serde::Serialize;

/// Default streaming window: completed-but-undelivered records the
/// runner may buffer. 256 records ≈ 93 KiB — comfortably constant.
pub const DEFAULT_WINDOW: usize = 256;

/// Request-count sketch grid: `[2^4, 2^13)` covers the spec's
/// 30..4000 bounded-Pareto range with 4 buckets per octave.
const COUNT_SKETCH_MIN_EXP: i32 = 4;
/// One-past-highest octave of the request-count grid.
const COUNT_SKETCH_MAX_EXP: i32 = 13;

/// CDN-share CCDF grid: thresholds `k/20` for `k = 0..=20` (Fig. 3's
/// x-axis at 5 % resolution).
const SHARE_GRID: usize = 21;

/// Fit band for the request-count tail exponent (log-log CCDF slope),
/// chosen inside the bounded-Pareto body where truncation bias is
/// small.
const COUNT_TAIL_BAND: (f64, f64) = (60.0, 500.0);
/// Fit band for the resource-size tail exponent.
const SIZE_TAIL_BAND: (f64, f64) = (1024.0, 512.0 * 1024.0);

/// Rolling, O(1)-per-record fold of a page-record stream. Everything
/// the population figures need, nothing proportional to the number of
/// pages.
#[derive(Debug, Clone)]
pub(crate) struct PopulationAggregator {
    pages: u64,
    requests: u64,
    cdn_requests: u64,
    h3_cdn_requests: u64,
    cdn_bytes: u64,
    request_counts: Welford,
    cdn_fractions: Welford,
    count_sketch: QuantileSketch,
    size_sketch: QuantileSketch,
    share_ccdf: [u64; SHARE_GRID],
    provider_pages: [u64; 8],
    cdn_by_provider: [u64; 8],
    h3_by_provider: [u64; 8],
    degree_hist: [u64; 9],
}

impl Default for PopulationAggregator {
    fn default() -> Self {
        Self::new()
    }
}

impl PopulationAggregator {
    /// An empty aggregator on the fixed grids.
    #[must_use]
    pub(crate) fn new() -> Self {
        PopulationAggregator {
            pages: 0,
            requests: 0,
            cdn_requests: 0,
            h3_cdn_requests: 0,
            cdn_bytes: 0,
            request_counts: Welford::new(),
            cdn_fractions: Welford::new(),
            count_sketch: QuantileSketch::new(COUNT_SKETCH_MIN_EXP, COUNT_SKETCH_MAX_EXP, 4),
            // The size grid mirrors `PageRecord::size_bucket` exactly, so
            // per-page histograms merge bucket-for-bucket (pinned by test).
            size_sketch: QuantileSketch::new(
                SIZE_HIST_MIN_EXP,
                SIZE_HIST_MAX_EXP,
                SIZE_HIST_BUCKETS_PER_OCTAVE,
            ),
            share_ccdf: [0; SHARE_GRID],
            provider_pages: [0; 8],
            cdn_by_provider: [0; 8],
            h3_by_provider: [0; 8],
            degree_hist: [0; 9],
        }
    }

    /// Folds one record. Order-insensitive: any permutation of the
    /// same records gives the same aggregate.
    pub(crate) fn absorb(&mut self, r: &PageRecord) {
        self.pages += 1;
        self.requests += u64::from(r.requests);
        self.cdn_requests += u64::from(r.cdn_requests);
        self.h3_cdn_requests += u64::from(r.h3_cdn_requests);
        self.cdn_bytes += r.cdn_bytes;
        self.request_counts.push(f64::from(r.requests));
        let frac = r.cdn_fraction();
        self.cdn_fractions.push(frac);
        self.count_sketch.push(f64::from(r.requests));
        for (i, &c) in r.size_hist.iter().enumerate() {
            if c > 0 {
                self.size_sketch.add_bucket(i, u64::from(c));
            }
        }
        for (k, above) in self.share_ccdf.iter_mut().enumerate() {
            if frac > k as f64 / 20.0 {
                *above += 1;
            }
        }
        self.degree_hist[r.provider_count().min(8) as usize] += 1;
        for i in 0..8 {
            if r.provider_mask & (1 << i) != 0 {
                self.provider_pages[i] += 1;
            }
            self.cdn_by_provider[i] += u64::from(r.cdn_by_provider[i]);
            self.h3_by_provider[i] += u64::from(r.h3_by_provider[i]);
        }
    }

    /// Finalises the aggregate into the serialisable summary.
    #[must_use]
    pub(crate) fn summary(&self, spec: &PopulationSpec) -> PopulationSummary {
        let pages = self.pages.max(1) as f64;
        let providers = Provider::ALL
            .iter()
            .enumerate()
            .map(|(i, p)| ProviderRow {
                provider: p.name().to_owned(),
                pages: self.provider_pages[i],
                page_share: self.provider_pages[i] as f64 / pages,
                cdn_requests: self.cdn_by_provider[i],
                h3_requests: self.h3_by_provider[i],
                h3_request_share: self.h3_by_provider[i] as f64
                    / self.h3_cdn_requests.max(1) as f64,
            })
            .collect::<Vec<_>>();
        let mut shares: Vec<f64> = providers.iter().map(|r| r.page_share).collect();
        shares.sort_by(|a, b| b.total_cmp(a));
        let top4_min_page_share = shares.get(3).copied().unwrap_or(f64::NAN);
        let multi = self.degree_hist.iter().skip(2).sum::<u64>();
        PopulationSummary {
            pages: self.pages,
            seed: spec.seed,
            requests: self.requests,
            cdn_requests: self.cdn_requests,
            h3_cdn_requests: self.h3_cdn_requests,
            cdn_bytes: self.cdn_bytes,
            mean_requests_per_page: self.request_counts.mean(),
            stddev_requests_per_page: self.request_counts.stddev(),
            request_count_p50: self.count_sketch.quantile(0.5),
            request_count_p90: self.count_sketch.quantile(0.9),
            request_tail_alpha: tail_alpha(&self.count_sketch, COUNT_TAIL_BAND),
            size_p50_bytes: self.size_sketch.quantile(0.5),
            size_p75_bytes: self.size_sketch.quantile(0.75),
            size_tail_alpha: tail_alpha(&self.size_sketch, SIZE_TAIL_BAND),
            mean_cdn_fraction: self.cdn_fractions.mean(),
            share_ccdf: self
                .share_ccdf
                .iter()
                .enumerate()
                .map(|(k, &above)| (k as f64 / 20.0, above as f64 / pages))
                .collect(),
            multi_provider_share: multi as f64 / pages,
            top4_min_page_share,
            degree_hist: self.degree_hist.to_vec(),
            providers,
        }
    }
}

/// The emitted result: Fig. 2–4's statistics plus the tail diagnostics
/// the generator's calibration is judged by. A pure function of the
/// [`PopulationSpec`] — never of worker count, window or resume split.
#[derive(Debug, Clone, Serialize)]
pub struct PopulationSummary {
    /// Pages aggregated.
    pub pages: u64,
    /// Population seed.
    pub seed: u64,
    /// Total requests across all pages.
    pub requests: u64,
    /// Requests served by CDNs.
    pub cdn_requests: u64,
    /// CDN requests reachable over H3.
    pub h3_cdn_requests: u64,
    /// Total bytes across CDN requests.
    pub cdn_bytes: u64,
    /// Mean requests per page (paper: ≈ 111).
    pub mean_requests_per_page: f64,
    /// Standard deviation of requests per page.
    pub stddev_requests_per_page: f64,
    /// Median requests per page (sketch grid midpoint).
    pub request_count_p50: f64,
    /// 90th-percentile requests per page.
    pub request_count_p90: f64,
    /// Fitted request-count tail exponent (log-log CCDF slope, negated).
    pub request_tail_alpha: f64,
    /// Median CDN resource size, bytes.
    pub size_p50_bytes: f64,
    /// 75th-percentile CDN resource size (paper §VI-E: ≈ 20 KB).
    pub size_p75_bytes: f64,
    /// Fitted resource-size tail exponent.
    pub size_tail_alpha: f64,
    /// Mean per-page CDN share of requests.
    pub mean_cdn_fraction: f64,
    /// Fig. 3: `(threshold, fraction of pages with CDN share > threshold)`
    /// on the 5 %-step grid.
    pub share_ccdf: Vec<(f64, f64)>,
    /// Fig. 4b: fraction of pages using ≥ 2 providers (paper: 94.8 %).
    pub multi_provider_share: f64,
    /// Fig. 4a: appearance probability of the 4th-most-common provider
    /// (paper: every top-4 provider appears on > 50 % of pages).
    pub top4_min_page_share: f64,
    /// Pages by provider degree (index = distinct providers, 0..=8).
    pub degree_hist: Vec<u64>,
    /// Per-provider rows, `Provider::ALL` order.
    pub providers: Vec<ProviderRow>,
}

/// One provider's population-wide totals (Fig. 2 / Fig. 4a).
#[derive(Debug, Clone, Serialize)]
pub struct ProviderRow {
    /// Provider name.
    pub provider: String,
    /// Pages the provider serves ≥ 1 request on.
    pub pages: u64,
    /// Fraction of all pages (Fig. 4a's appearance probability).
    pub page_share: f64,
    /// CDN requests served.
    pub cdn_requests: u64,
    /// H3-reachable CDN requests served.
    pub h3_requests: u64,
    /// Share of all H3-reachable CDN requests (Fig. 2's bars).
    pub h3_request_share: f64,
}

impl std::fmt::Display for PopulationSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "population: {} pages (seed {:#x}), {} requests, {:.1} % CDN, \
             {:.1} % of CDN requests H3-reachable",
            self.pages,
            self.seed,
            self.requests,
            100.0 * self.cdn_requests as f64 / self.requests.max(1) as f64,
            100.0 * self.h3_cdn_requests as f64 / self.cdn_requests.max(1) as f64,
        )?;
        writeln!(
            f,
            "requests/page: mean {:.1} (sd {:.1}), p50 {:.0}, p90 {:.0}, tail α ≈ {:.2}",
            self.mean_requests_per_page,
            self.stddev_requests_per_page,
            self.request_count_p50,
            self.request_count_p90,
            self.request_tail_alpha,
        )?;
        writeln!(
            f,
            "cdn resource size: p50 {:.0} B, p75 {:.0} B, tail α ≈ {:.2}",
            self.size_p50_bytes, self.size_p75_bytes, self.size_tail_alpha,
        )?;
        let at_half = self
            .share_ccdf
            .iter()
            .find(|(t, _)| (*t - 0.5).abs() < 1e-9)
            .map_or(f64::NAN, |&(_, v)| v);
        writeln!(
            f,
            "pages with > 50 % CDN share: {:.1} %   multi-provider pages: {:.1} %   \
             top-4 appearance floor: {:.1} %",
            100.0 * at_half,
            100.0 * self.multi_provider_share,
            100.0 * self.top4_min_page_share,
        )?;
        writeln!(
            f,
            "{:<12} {:>10} {:>7} {:>12} {:>12} {:>8}",
            "provider", "pages", "page%", "cdn req", "h3 req", "h3%"
        )?;
        for row in &self.providers {
            writeln!(
                f,
                "{:<12} {:>10} {:>6.1}% {:>12} {:>12} {:>7.1}%",
                row.provider,
                row.pages,
                100.0 * row.page_share,
                row.cdn_requests,
                row.h3_requests,
                100.0 * row.h3_request_share,
            )?;
        }
        Ok(())
    }
}

/// Fits the tail exponent `α` of a sketched distribution: the negated
/// slope of `log10(CCDF)` against `log10(x)` over the bucket
/// low-edges inside `band`. `NaN` when fewer than two populated
/// buckets fall in the band.
fn tail_alpha(sketch: &QuantileSketch, band: (f64, f64)) -> f64 {
    let pts: Vec<(f64, f64)> = sketch
        .ccdf_points()
        .into_iter()
        .filter(|&(x, c)| x >= band.0 && x <= band.1 && c > 0.0)
        .collect();
    if pts.len() < 2 {
        return f64::NAN;
    }
    let xs: Vec<f64> = pts.iter().map(|p| p.0.log10()).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1.log10()).collect();
    -linear_fit(&xs, &ys).slope
}

/// Journaled records of a previous run, decoded and keyed by site.
/// Undecodable or out-of-range payloads are dropped (→ re-executed).
fn load_resumed(run: &RunDir, spec: &PopulationSpec) -> BTreeMap<u64, PageRecord> {
    let raw = match ShardedJournal::load(&run.shards_dir()) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("h3cdn population: shard journal unreadable ({e}); running from scratch");
            return BTreeMap::new();
        }
    };
    raw.into_iter()
        .filter(|(site, bytes)| *site < spec.num_pages && bytes.len() == PageRecord::ENCODED_LEN)
        .filter_map(|(site, bytes)| {
            let r = PageRecord::decode(&bytes)?;
            (r.site == site).then_some((site, r))
        })
        .collect()
}

/// Runs the population campaign: journaled records are merge-joined by
/// site with freshly generated ones, every record flows through the
/// aggregator exactly once, and (under a checkpointed run) every fresh
/// record is journaled from the in-order sink.
///
/// Returns the summary plus the streaming stats; the stats are
/// scheduling diagnostics (fresh-job count, peak buffered) and *not*
/// part of the deterministic output.
pub fn run(
    spec: &PopulationSpec,
    runner: &RunnerConfig,
    window: usize,
    run_dir: Option<&RunDir>,
) -> (PopulationSummary, StreamStats) {
    spec.validate().expect("population spec validates");
    let resumed = run_dir.map_or_else(BTreeMap::new, |run| load_resumed(run, spec));
    if !resumed.is_empty() {
        eprintln!(
            "h3cdn population: {} page record(s) loaded from shard journal",
            resumed.len()
        );
    }
    let journal = run_dir.and_then(|run| match ShardedJournal::open(&run.shards_dir()) {
        Ok(j) => Some(j),
        Err(e) => {
            eprintln!("h3cdn population: shard journal unavailable ({e}); running unjournaled");
            None
        }
    });

    let mut jobs: Vec<(u64, _)> = Vec::new();
    {
        let mut resumed_sites = resumed.keys().copied().peekable();
        for site in 0..spec.num_pages {
            if resumed_sites.peek() == Some(&site) {
                resumed_sites.next();
                continue;
            }
            jobs.push((site, move || page_record(spec, site)));
        }
    }

    let mut agg = PopulationAggregator::new();
    let mut pending = resumed.into_iter().peekable();
    let stats = run_keyed_streaming(runner, jobs, window, |site, record: PageRecord| {
        // Merge-join: journaled records with a smaller site index come
        // first, keeping the fold in global site order.
        while pending.peek().is_some_and(|&(s, _)| s < site) {
            let (_, r) = pending.next().expect("peeked");
            agg.absorb(&r);
        }
        if let Some(j) = &journal {
            if let Err(e) = j.append(site, &record.encode()) {
                eprintln!("h3cdn population: journal append failed for site {site}: {e}");
            }
        }
        agg.absorb(&record);
    });
    for (_, r) in pending {
        agg.absorb(&r);
    }
    if let Some(j) = &journal {
        if let Err(e) = j.finish() {
            eprintln!("h3cdn population: journal finish failed: {e}");
        }
    }
    (agg.summary(spec), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn small_spec() -> PopulationSpec {
        PopulationSpec::default().with_pages(300).with_seed(77)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("h3cdn-population-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    /// The per-page histogram grid and the population sketch grid must
    /// agree bucket for bucket, or `absorb` mis-bins every size.
    #[test]
    fn page_histogram_grid_matches_sketch_grid() {
        let sketch = QuantileSketch::new(
            SIZE_HIST_MIN_EXP,
            SIZE_HIST_MAX_EXP,
            SIZE_HIST_BUCKETS_PER_OCTAVE,
        );
        assert_eq!(
            sketch.num_buckets(),
            h3cdn_web::population::SIZE_HIST_BUCKETS
        );
        for bytes in [
            1u64,
            63,
            64,
            65,
            120,
            1024,
            19_999,
            65_536,
            4_999_999,
            1 << 40,
        ] {
            assert_eq!(
                Some(PageRecord::size_bucket(bytes)),
                sketch.bucket_index(bytes as f64),
                "grid mismatch at {bytes} bytes"
            );
        }
    }

    #[test]
    fn aggregate_is_a_pure_fold_of_the_records() {
        let spec = small_spec();
        let mut forward = PopulationAggregator::new();
        let mut backward = PopulationAggregator::new();
        for site in 0..spec.num_pages {
            forward.absorb(&page_record(&spec, site));
        }
        for site in (0..spec.num_pages).rev() {
            backward.absorb(&page_record(&spec, site));
        }
        let (a, b) = (forward.summary(&spec), backward.summary(&spec));
        assert_eq!(a.pages, spec.num_pages);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.share_ccdf, b.share_ccdf);
        assert_eq!(a.degree_hist, b.degree_hist);
        assert!((a.mean_requests_per_page - b.mean_requests_per_page).abs() < 1e-9);
    }

    #[test]
    fn streaming_run_matches_direct_fold_at_any_worker_count() {
        let spec = small_spec();
        let mut direct = PopulationAggregator::new();
        for site in 0..spec.num_pages {
            direct.absorb(&page_record(&spec, site));
        }
        let want = serde_json::to_string(&direct.summary(&spec)).expect("serialises");
        for jobs in [1, 4] {
            let runner = RunnerConfig::default().with_jobs(jobs).with_quiet(true);
            let (summary, stats) = run(&spec, &runner, 16, None);
            assert_eq!(
                serde_json::to_string(&summary).expect("serialises"),
                want,
                "jobs={jobs} diverged from the direct fold"
            );
            assert_eq!(stats.total as u64, spec.num_pages);
            assert!(stats.peak_buffered <= 16);
        }
    }

    /// Resume is bit-identical: journal half the records, then let the
    /// run merge-join them with the freshly generated other half.
    #[test]
    fn resumed_records_merge_join_bit_identically() {
        let spec = small_spec();
        let runner = RunnerConfig::default().with_jobs(2).with_quiet(true);
        let (clean, _) = run(&spec, &runner, 16, None);
        let want = serde_json::to_string(&clean).expect("serialises");

        let root = temp_dir("resume");
        let run_dir = RunDir::at(root.clone());
        let journal = ShardedJournal::open(&run_dir.shards_dir()).expect("journal opens");
        for site in (0..spec.num_pages).filter(|s| s % 3 == 0) {
            journal
                .append(site, &page_record(&spec, site).encode())
                .expect("append");
        }
        journal.finish().expect("finish");

        let (resumed, stats) = run(&spec, &runner, 16, Some(&run_dir));
        assert_eq!(serde_json::to_string(&resumed).expect("serialises"), want);
        assert_eq!(
            stats.total as u64,
            spec.num_pages - spec.num_pages.div_ceil(3)
        );

        // And the journal now holds every record, so a second resume
        // re-executes nothing.
        let (again, stats) = run(&spec, &runner, 16, Some(&run_dir));
        assert_eq!(serde_json::to_string(&again).expect("serialises"), want);
        assert_eq!(stats.total, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn summary_shapes_track_the_paper_at_modest_scale() {
        let spec = PopulationSpec::default().with_pages(4000);
        let runner = RunnerConfig::default().with_jobs(0).with_quiet(true);
        let (s, _) = run(&spec, &runner, DEFAULT_WINDOW, None);
        let at_half = s.share_ccdf[10].1;
        assert!((at_half - 0.75).abs() < 0.05, "CCDF@0.5 = {at_half}");
        assert!(
            (s.multi_provider_share - 0.948).abs() < 0.04,
            "multi-provider share = {}",
            s.multi_provider_share
        );
        assert!(s.top4_min_page_share > 0.5);
        assert!(
            (s.mean_requests_per_page - 110.0).abs() < 0.15 * 110.0,
            "mean requests/page = {}",
            s.mean_requests_per_page
        );
        assert!(s.size_p75_bytes > 12_000.0 && s.size_p75_bytes < 30_000.0);
        assert!((s.request_tail_alpha - 1.22).abs() < 0.3);
        // CCDF grid is monotone non-increasing.
        for pair in s.share_ccdf.windows(2) {
            assert!(pair[1].1 <= pair[0].1 + 1e-12);
        }
    }
}
