//! Fig. 8: shared providers reduce PLT under consecutive visits — (a)
//! PLT reduction vs number of providers used, (b) resumed connections vs
//! number of providers used.

use std::collections::BTreeMap;
use std::fmt;

use h3cdn_analysis::mean;
use h3cdn_cdn::Vantage;
use h3cdn_har::plt_reduction_ms;
use serde::Serialize;

use h3cdn::MeasurementCampaign;

/// One row of Fig. 8, keyed by the page's provider count.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// Distinct CDN providers used by the pages in this bucket.
    pub providers: usize,
    /// Pages in the bucket.
    pub pages: usize,
    /// (a) Mean PLT reduction under consecutive visits, ms.
    pub mean_plt_reduction_ms: f64,
    /// (b) Mean resumed connections per page (H3 pass).
    pub mean_resumed: f64,
}

/// The reproduced Fig. 8 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8 {
    /// Rows in ascending provider count.
    pub rows: Vec<Fig8Row>,
    /// Pearson-style direction check: true when both series increase
    /// from the first to the last populated bucket.
    pub increasing: bool,
}

/// Runs consecutive passes (H2 and H3) from `vantage` and buckets the
/// per-page reductions by provider count. The first `warmup` pages of
/// the pass are excluded from the statistics: they populate the ticket
/// cache but have little prior state to resume from, so including them
/// would confound provider count with sequence position.
pub fn run(campaign: &MeasurementCampaign, vantage: Vantage, warmup: usize) -> Fig8 {
    let (h2, h3) = campaign.consecutive_pass(vantage);
    let mut buckets: BTreeMap<usize, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for (i, page) in campaign
        .corpus()
        .pages
        .iter()
        .enumerate()
        .skip(warmup.max(1))
    {
        let providers = page.providers_used().len();
        let entry = buckets.entry(providers.min(6)).or_default();
        entry.0.push(plt_reduction_ms(&h2[i], &h3[i]));
        entry.1.push(h3[i].resumed_connection_count() as f64);
    }
    let rows: Vec<Fig8Row> = buckets
        .into_iter()
        .map(|(providers, (reds, resumed))| Fig8Row {
            providers,
            pages: reds.len(),
            mean_plt_reduction_ms: mean(&reds),
            mean_resumed: mean(&resumed),
        })
        .collect();
    let increasing = match (rows.first(), rows.last()) {
        (Some(first), Some(last)) if rows.len() >= 2 => {
            last.mean_plt_reduction_ms > first.mean_plt_reduction_ms
                && last.mean_resumed > first.mean_resumed
        }
        _ => false,
    };
    Fig8 { rows, increasing }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 8: consecutive visits — PLT reduction and resumed connections vs providers used"
        )?;
        writeln!(
            f,
            "{:>10} {:>6} {:>16} {:>14}",
            "providers", "pages", "mean PLT red.", "mean resumed"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>10} {:>6} {:>14.1}ms {:>14.1}",
                r.providers, r.pages, r.mean_plt_reduction_ms, r.mean_resumed
            )?;
        }
        writeln!(f, "both series increasing: {}", self.increasing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::{CampaignConfig, MeasurementCampaign};

    #[test]
    fn more_providers_more_resumption() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(40, 44));
        let fig = run(&campaign, Vantage::Utah, 10);
        assert!(!fig.rows.is_empty());
        assert!(fig.rows.iter().all(|r| r.mean_plt_reduction_ms.is_finite()));
        // Fig. 8(b)'s core: across pages, resumed multiplexed (H2/H3)
        // connections correlate positively with the number of providers
        // used. HTTP/1.x pools are excluded from the correlation — a
        // single HTTP/1.x-only tracker domain resumes six connections at
        // once, which is volume noise orthogonal to provider sharing.
        let (_, h3) = campaign.consecutive_pass(Vantage::Utah);
        let providers: Vec<f64> = campaign.corpus().pages[10..]
            .iter()
            .map(|p| p.providers_used().len() as f64)
            .collect();
        let resumed: Vec<f64> = h3[10..]
            .iter()
            .map(|page| {
                page.entries
                    .iter()
                    .filter(|e| e.resumed && e.protocol != "http/1.1")
                    .map(|e| e.connection)
                    .collect::<std::collections::BTreeSet<_>>()
                    .len() as f64
            })
            .collect();
        let r = h3cdn_analysis::pearson(&providers, &resumed);
        assert!(r > 0.2, "providers-vs-resumed correlation {r}");
    }
}
