//! The fault matrix: scheduled path impairments × protocol/fallback
//! arms, quantifying Chrome-style graceful degradation.
//!
//! The paper measures H3 on *healthy* CloudLab paths; this experiment
//! asks what its two Chrome instances would have seen on broken ones.
//! For every impairment scenario the matrix loads each page three ways
//! over identical paths:
//!
//! * **h2** — QUIC disabled; a UDP-only fault never touches it.
//! * **h3** — `enable-quic` *without* fallback machinery: requests
//!   stranded on a dead QUIC connection stay stranded and the visit
//!   aborts (the baseline the matrix quantifies).
//! * **h3+fallback** — Chrome-style graceful degradation: the
//!   QUIC-vs-TCP race, the broken-QUIC memory, re-dispatch of stranded
//!   requests and TCP re-dial backoff.
//!
//! Each cell reports abort counts, the median PLT of completed loads,
//! the PLT delta against the same scenario's H2 arm (the price of
//! falling back), fallback counts and the mean time-to-fallback
//! penalty. The fault-free control row is bit-identical to the plain
//! campaign visit paths for every worker count.

use std::collections::BTreeMap;
use std::fmt;

use h3cdn_analysis::median;
use h3cdn_browser::{try_visit_page, BrokenQuicCache, FaultSpec};
use h3cdn_cdn::Vantage;
use h3cdn_netsim::FaultPlan;
use h3cdn_sim_core::{SimDuration, SimTime};
use h3cdn_transport::tls::TicketStore;
use h3cdn_web::{DomainTable, Webpage};
use serde::{Deserialize, Serialize};

use h3cdn::runner::durable::JobMeta;
use h3cdn::{MeasurementCampaign, ProtocolMode, VisitConfig};

/// One impairment scenario: a fault plan installed symmetrically on a
/// deterministic fraction of each page's client↔server paths.
#[derive(Debug, Clone)]
pub struct FaultScenario {
    /// Scenario label used in reports.
    pub name: String,
    /// The impairment; `None` leaves every path fault-free.
    pub faults: Option<FaultSpec>,
}

impl FaultScenario {
    /// No impairment — the control row. Its numbers must match the
    /// plain campaign visit paths bit-for-bit.
    pub fn fault_free() -> Self {
        FaultScenario {
            name: "none".to_owned(),
            faults: None,
        }
    }

    /// A permanent UDP blackhole on `fraction` of each page's domains:
    /// QUIC packets vanish silently while TCP flows untouched — the
    /// middlebox failure mode that motivated Chrome's fallback.
    pub fn udp_blackhole(fraction: f64) -> Self {
        FaultScenario {
            name: format!("udp-blackhole {:.0}%", fraction * 100.0),
            faults: Some(FaultSpec {
                plan: FaultPlan::udp_blackhole_always(),
                domain_fraction: fraction,
            }),
        }
    }

    /// A full bidirectional blackout over `[from_ms, until_ms)` on
    /// every path — both stacks lose packets and must recover.
    pub fn blackout_ms(from_ms: u64, until_ms: u64) -> Self {
        let plan = FaultPlan::new()
            .blackout(
                SimTime::ZERO + SimDuration::from_millis(from_ms),
                SimTime::ZERO + SimDuration::from_millis(until_ms),
            )
            .expect("blackout window is well-formed");
        FaultScenario {
            name: format!("blackout {from_ms}-{until_ms}ms"),
            faults: Some(FaultSpec::everywhere(plan)),
        }
    }
}

/// The default sweep: control, partial and total UDP blackholes, and a
/// mid-visit blackout.
pub fn default_scenarios() -> Vec<FaultScenario> {
    vec![
        FaultScenario::fault_free(),
        FaultScenario::udp_blackhole(0.5),
        FaultScenario::udp_blackhole(1.0),
        FaultScenario::blackout_ms(50, 1500),
    ]
}

/// The protocol/fallback arms of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    H2,
    H3NoFallback,
    H3WithFallback,
}

impl Arm {
    const ALL: [Arm; 3] = [Arm::H2, Arm::H3NoFallback, Arm::H3WithFallback];

    fn label(self) -> &'static str {
        match self {
            Arm::H2 => "h2",
            Arm::H3NoFallback => "h3",
            Arm::H3WithFallback => "h3+fallback",
        }
    }

    fn mode(self) -> ProtocolMode {
        match self {
            Arm::H2 => ProtocolMode::H2Only,
            Arm::H3NoFallback | Arm::H3WithFallback => ProtocolMode::H3Enabled,
        }
    }

    fn fallback(self) -> bool {
        matches!(self, Arm::H3WithFallback)
    }
}

/// One `(scenario, arm)` cell of the matrix.
#[derive(Debug, Clone, Serialize)]
pub struct FaultCell {
    /// Scenario label.
    pub scenario: String,
    /// Arm label (`h2` / `h3` / `h3+fallback`).
    pub arm: String,
    /// Pages measured.
    pub pages: usize,
    /// Pages that could not finish (stranded requests).
    pub aborted: usize,
    /// Median PLT over completed loads (`NaN` when none completed).
    pub median_plt_ms: f64,
    /// `median_plt_ms` minus the same scenario's H2-arm median — what
    /// the impairment (and surviving it) costs against plain TCP.
    pub plt_delta_vs_h2_ms: f64,
    /// Pages that performed at least one H3→H2 fallback.
    pub fallback_pages: usize,
    /// Total H3→H2 fallbacks across all pages.
    pub h3_fallbacks: u64,
    /// Mean time spent waiting on QUIC before a fallback fired — the
    /// per-fallback time-to-fallback penalty.
    pub mean_fallback_wait_ms: f64,
    /// TCP re-dial attempts after connection failures.
    pub conn_retries: u64,
    /// Packets consumed by the injected faults.
    pub fault_dropped_packets: u64,
    /// Per-site PLTs in site order; `NaN` marks an aborted load. Kept
    /// so downstream tooling (and the bit-identity tests) can compare
    /// individual loads.
    pub plts_ms: Vec<f64>,
}

/// The full matrix, rows scenario-major in input order, arms
/// `h2`, `h3`, `h3+fallback` within each scenario.
#[derive(Debug, Clone, Serialize)]
pub struct FaultMatrix {
    /// One row per `(scenario, arm)`.
    pub rows: Vec<FaultCell>,
}

impl FaultMatrix {
    /// The cell for the given scenario and arm labels, if present.
    pub fn cell(&self, scenario: &str, arm: &str) -> Option<&FaultCell> {
        self.rows
            .iter()
            .find(|r| r.scenario == scenario && r.arm == arm)
    }
}

/// One page load's contribution to a cell. Serialized into the
/// checkpoint journal under a durable context; `NaN` PLTs round-trip
/// through JSON `null` back to the canonical [`f64::NAN`] this module
/// writes, so resumed matrices stay bit-identical.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Sample {
    /// `NaN` when the visit aborted.
    plt_ms: f64,
    h3_fallbacks: u64,
    fallback_wait_ms: f64,
    conn_retries: u64,
    fault_dropped: u64,
}

/// Loads one page under `cfg`, reducing the outcome (completed or
/// aborted) to a [`Sample`].
fn sample(page: &Webpage, domains: &DomainTable, cfg: &VisitConfig) -> Sample {
    match try_visit_page(
        page,
        domains,
        cfg,
        TicketStore::new(),
        BrokenQuicCache::new(),
    ) {
        Ok(o) => Sample {
            plt_ms: o.har.plt_ms,
            h3_fallbacks: o.resilience.h3_fallbacks,
            fallback_wait_ms: o.resilience.fallback_wait.as_millis_f64(),
            conn_retries: o.resilience.conn_retries,
            fault_dropped: o.stats.packets_fault_dropped,
        },
        Err(a) => Sample {
            plt_ms: f64::NAN,
            h3_fallbacks: a.resilience.h3_fallbacks,
            fallback_wait_ms: a.resilience.fallback_wait.as_millis_f64(),
            conn_retries: a.resilience.conn_retries,
            fault_dropped: a.stats.packets_fault_dropped,
        },
    }
}

/// Median PLT over the completed loads of a cell.
fn completed_median(samples: &[Sample]) -> f64 {
    let done: Vec<f64> = samples
        .iter()
        .map(|s| s.plt_ms)
        .filter(|p| p.is_finite())
        .collect();
    median(&done)
}

/// Runs the matrix: `scenarios × {h2, h3, h3+fallback} × sites` as one
/// batch of keyed jobs on the campaign's execution layer (the plain
/// deterministic pool, or the crash-safe runner when the campaign
/// carries a durable context). The key-ordered merge makes the output
/// bit-identical for every worker count. Quarantined loads are dropped
/// from their cell (shrinking its `pages` count) and reported through
/// the campaign's quarantine sink.
pub fn run(
    campaign: &MeasurementCampaign,
    vantage: Vantage,
    scenarios: &[FaultScenario],
) -> FaultMatrix {
    let domains = &campaign.corpus().domains;
    let w = &campaign.config().workload;
    let mut jobs = Vec::new();
    for (si, sc) in scenarios.iter().enumerate() {
        for (ai, arm) in Arm::ALL.iter().enumerate() {
            for (site, page) in campaign.corpus().pages.iter().enumerate() {
                let mut cfg = campaign
                    .config()
                    .visit
                    .clone()
                    .with_vantage(vantage)
                    .with_mode(arm.mode())
                    .with_h3_fallback(arm.fallback());
                if let Some(f) = &sc.faults {
                    cfg = cfg.with_faults(f.clone());
                }
                let meta = JobMeta {
                    label: format!("fault '{}' {} site {site}", sc.name, arm.label()),
                    repro: format!(
                        "cargo run -q -p h3cdn-experiments --bin fault_matrix -- \
                         --pages {} --seed {}",
                        w.num_pages, w.seed
                    ),
                };
                jobs.push(((si as u32, ai as u32, site as u32), meta, move || {
                    sample(page, domains, &cfg)
                }));
            }
        }
    }
    let keyed = campaign.run_durable("fault-matrix", jobs);

    let mut by_cell: BTreeMap<(u32, u32), Vec<Sample>> = BTreeMap::new();
    for ((si, ai, _site), s) in keyed.into_iter().filter_map(|(k, s)| Some((k, s?))) {
        by_cell.entry((si, ai)).or_default().push(s);
    }
    // H2 medians per scenario feed the delta column.
    let mut h2_median: BTreeMap<u32, f64> = BTreeMap::new();
    for ((si, ai), samples) in &by_cell {
        if *ai == 0 {
            h2_median.insert(*si, completed_median(samples));
        }
    }
    let mut rows = Vec::new();
    for ((si, ai), samples) in &by_cell {
        let scenario = scenarios
            .get(*si as usize)
            .map_or(String::new(), |s| s.name.clone());
        let arm = Arm::ALL.get(*ai as usize).map_or("?", |a| a.label());
        let med = completed_median(samples);
        let h2 = h2_median.get(si).copied().unwrap_or(f64::NAN);
        let fallbacks: u64 = samples.iter().map(|s| s.h3_fallbacks).sum();
        let wait_ms: f64 = samples.iter().map(|s| s.fallback_wait_ms).sum();
        rows.push(FaultCell {
            scenario,
            arm: arm.to_owned(),
            pages: samples.len(),
            aborted: samples.iter().filter(|s| !s.plt_ms.is_finite()).count(),
            median_plt_ms: med,
            plt_delta_vs_h2_ms: med - h2,
            fallback_pages: samples.iter().filter(|s| s.h3_fallbacks > 0).count(),
            h3_fallbacks: fallbacks,
            mean_fallback_wait_ms: if fallbacks == 0 {
                0.0
            } else {
                wait_ms / fallbacks as f64
            },
            conn_retries: samples.iter().map(|s| s.conn_retries).sum(),
            fault_dropped_packets: samples.iter().map(|s| s.fault_dropped).sum(),
            plts_ms: samples.iter().map(|s| s.plt_ms).collect(),
        });
    }
    FaultMatrix { rows }
}

/// `"-"` for non-finite values (nothing completed / no reference).
fn fmt_ms(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "-".to_owned()
    }
}

impl fmt::Display for FaultMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fault matrix: impairments x {{h2, h3, h3+fallback}} (per-cell aggregates)"
        )?;
        writeln!(
            f,
            "{:<22} {:<12} {:>6} {:>8} {:>12} {:>10} {:>9} {:>10} {:>11} {:>8} {:>9}",
            "scenario",
            "arm",
            "pages",
            "aborted",
            "med PLT ms",
            "d-h2 ms",
            "fb pages",
            "fallbacks",
            "fb wait ms",
            "retries",
            "dropped"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<22} {:<12} {:>6} {:>8} {:>12} {:>10} {:>9} {:>10} {:>11.1} {:>8} {:>9}",
                r.scenario,
                r.arm,
                r.pages,
                r.aborted,
                fmt_ms(r.median_plt_ms),
                fmt_ms(r.plt_delta_vs_h2_ms),
                r.fallback_pages,
                r.h3_fallbacks,
                r.mean_fallback_wait_ms,
                r.conn_retries,
                r.fault_dropped_packets
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::runner::RunnerConfig;
    use h3cdn::{CampaignConfig, MeasurementCampaign};

    #[test]
    fn fault_free_rows_match_campaign_paths_bitwise() {
        let cfg = CampaignConfig::small(3, 11);
        let serial = MeasurementCampaign::new(cfg.clone().with_runner(RunnerConfig::serial()));
        let parallel =
            MeasurementCampaign::new(cfg.with_runner(RunnerConfig::default().with_jobs(8)));
        let scenarios = vec![FaultScenario::fault_free()];
        let a = run(&serial, Vantage::Utah, &scenarios);
        let b = run(&parallel, Vantage::Utah, &scenarios);
        assert_eq!(a.rows.len(), 3);
        // Worker-count invariance, bit for bit.
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.median_plt_ms.to_bits(), rb.median_plt_ms.to_bits());
            for (x, y) in ra.plts_ms.iter().zip(&rb.plts_ms) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // The H2/H3 arms reproduce the plain campaign visit paths
        // exactly, and the fallback arm is bit-identical to plain H3:
        // the insurance machinery is free on healthy paths.
        let h2 = a.cell("none", "h2").expect("h2 row");
        let h3 = a.cell("none", "h3").expect("h3 row");
        let fb = a.cell("none", "h3+fallback").expect("fallback row");
        assert_eq!(h2.aborted + h3.aborted + fb.aborted, 0);
        for site in 0..3usize {
            let want_h2 = serial
                .visit(site, Vantage::Utah, ProtocolMode::H2Only)
                .plt_ms;
            let want_h3 = serial
                .visit(site, Vantage::Utah, ProtocolMode::H3Enabled)
                .plt_ms;
            assert_eq!(h2.plts_ms[site].to_bits(), want_h2.to_bits());
            assert_eq!(h3.plts_ms[site].to_bits(), want_h3.to_bits());
            assert_eq!(fb.plts_ms[site].to_bits(), want_h3.to_bits());
        }
    }

    #[test]
    fn full_blackhole_is_survived_only_with_fallback() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(4, 11));
        let m = run(
            &campaign,
            Vantage::Utah,
            &[FaultScenario::udp_blackhole(1.0)],
        );
        let h2 = m.cell("udp-blackhole 100%", "h2").expect("h2 row");
        let h3 = m.cell("udp-blackhole 100%", "h3").expect("h3 row");
        let fb = m.cell("udp-blackhole 100%", "h3+fallback").expect("fb row");
        // TCP traffic never touches the blackhole.
        assert_eq!(h2.aborted, 0);
        assert_eq!(h2.fault_dropped_packets, 0);
        // Without fallback machinery, stranded H3 requests abort pages.
        assert!(h3.aborted > 0, "blackholed H3 must strand: {h3:?}");
        // With it, every page completes — over TCP, at a price.
        assert_eq!(fb.aborted, 0, "fallback must rescue every page");
        assert!(fb.h3_fallbacks > 0);
        assert!(fb.fallback_pages > 0);
        assert!(fb.mean_fallback_wait_ms > 0.0, "penalty must be nonzero");
        assert!(
            fb.plt_delta_vs_h2_ms > 0.0,
            "the rescue is not free: {}",
            fb.plt_delta_vs_h2_ms
        );
    }

    #[test]
    fn display_and_json_render() {
        let campaign = MeasurementCampaign::new(CampaignConfig::small(2, 5));
        let m = run(
            &campaign,
            Vantage::Utah,
            &[
                FaultScenario::fault_free(),
                FaultScenario::blackout_ms(50, 400),
            ],
        );
        let text = m.to_string();
        assert!(text.contains("blackout 50-400ms"));
        assert!(text.contains("h3+fallback"));
        let json = serde_json::to_string(&m).expect("serialises");
        assert!(json.contains("fault_dropped_packets"));
    }
}
