//! Table I: release year of H3 support per CDN provider and the
//! provider's own performance report.

use std::fmt;

use h3cdn_cdn::{Provider, ProviderRegistry};
use serde::Serialize;

/// One row of Table I.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Provider name.
    pub provider: String,
    /// Release year of H3 support, if public.
    pub release_year: Option<u16>,
    /// The provider's published performance report.
    pub performance_report: String,
}

/// The reproduced Table I.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// Rows in the paper's order (by release year, giants first).
    pub rows: Vec<Table1Row>,
}

/// Builds Table I from the calibrated provider registry.
pub fn run() -> Table1 {
    let registry = ProviderRegistry::paper_calibrated();
    let order = [
        Provider::Cloudflare,
        Provider::Google,
        Provider::Fastly,
        Provider::QuicCloud,
        Provider::Amazon,
        Provider::Akamai,
    ];
    let rows = order
        .into_iter()
        .map(|p| {
            let profile = registry.profile(p);
            Table1Row {
                provider: p.name().to_string(),
                release_year: profile.h3_release_year,
                performance_report: profile.performance_report.to_string(),
            }
        })
        .collect();
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table I: release year of H3 support in various CDNs and their performance reports"
        )?;
        writeln!(f, "{:<12} {:<8} report", "provider", "year")?;
        for row in &self.rows {
            let year = row
                .release_year
                .map_or_else(|| "N/A".into(), |y| y.to_string());
            writeln!(
                f,
                "{:<12} {:<8} {}",
                row.provider, year, row.performance_report
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_paper_years() {
        let t = run();
        assert_eq!(t.rows.len(), 6);
        let year = |name: &str| {
            t.rows
                .iter()
                .find(|r| r.provider == name)
                .and_then(|r| r.release_year)
        };
        assert_eq!(year("Cloudflare"), Some(2019));
        assert_eq!(year("Google"), Some(2021));
        assert_eq!(year("Fastly"), Some(2021));
        assert_eq!(year("QUIC.Cloud"), Some(2021));
        assert_eq!(year("Amazon"), Some(2022));
        assert_eq!(year("Akamai"), Some(2023));
    }

    #[test]
    fn display_includes_every_provider() {
        let text = run().to_string();
        for name in [
            "Cloudflare",
            "Google",
            "Fastly",
            "QUIC.Cloud",
            "Amazon",
            "Akamai",
        ] {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
