//! Fig. 9: PLT reduction vs number of CDN resources under different
//! injected loss rates, with fitted slopes (paper: 0.80 at 0 %, 1.42 at
//! 0.5 %, 2.15 at 1 % — slope grows with loss).

use std::fmt;

use h3cdn_analysis::{bootstrap_slope_ci, linear_fit, median, LinearFit};
use h3cdn_cdn::Vantage;
use serde::Serialize;

use h3cdn::{MeasurementCampaign, VisitConfig};

/// One loss rate's scatter and fit.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Series {
    /// Injected loss percentage.
    pub loss_percent: f64,
    /// `(cdn_resources, plt_reduction_ms)` per page.
    pub points: Vec<(f64, f64)>,
    /// Fitted slope (ms of additional reduction per CDN resource).
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Fit quality.
    pub r_squared: f64,
    /// 95 % percentile-bootstrap confidence interval on the slope.
    pub slope_ci95: (f64, f64),
    /// Slope of the OLS fit over decile-binned medians — robust to the
    /// heavy per-page tails lossy visits produce, and closer to what the
    /// eye fits through the paper's scatter plots.
    pub binned_median_slope: f64,
}

/// The reproduced Fig. 9 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9 {
    /// One series per loss rate, ascending.
    pub series: Vec<Fig9Series>,
}

/// Paired visits of every page at each loss rate from `vantage`.
///
/// Lossy PLTs are high-variance, so [`run_with_repeats`] with 2–3
/// repeats (distinct path-jitter salts, points pooled) gives much more
/// stable slopes; this single-repeat entry point is the cheap variant.
pub fn run(campaign: &MeasurementCampaign, vantage: Vantage, loss_percents: &[f64]) -> Fig9 {
    run_with_repeats(campaign, vantage, loss_percents, 1)
}

/// As [`run`], with each page measured `repeats` times under distinct
/// path-jitter salts and all points pooled into the fit.
///
/// The full `loss × repeat × site` grid is submitted to the campaign's
/// parallel runner as one batch of keyed paired visits; the key-ordered
/// merge reproduces the serial sweep order (loss-major, then repeat,
/// then site) bit-for-bit.
pub fn run_with_repeats(
    campaign: &MeasurementCampaign,
    vantage: Vantage,
    loss_percents: &[f64],
    repeats: u64,
) -> Fig9 {
    let repeats = repeats.max(1);
    let mut specs = Vec::new();
    for (li, &loss) in loss_percents.iter().enumerate() {
        for rep in 0..repeats {
            let mut base: VisitConfig = campaign
                .config()
                .visit
                .clone()
                .with_vantage(vantage)
                .with_loss_percent(loss);
            base.jitter_salt = base.jitter_salt.wrapping_add(rep.wrapping_mul(0x9E37_79B9));
            for site in 0..campaign.corpus().pages.len() {
                specs.push(((li as u32, rep as u32), site, base.clone()));
            }
        }
    }
    let comparisons = campaign.compare_batch(specs);

    let mut series = Vec::new();
    for (li, &loss) in loss_percents.iter().enumerate() {
        let points: Vec<(f64, f64)> = comparisons
            .iter()
            .filter(|((l, _), _)| *l == li as u32)
            .map(|(_, cmp)| (cmp.cdn_resources as f64, cmp.plt_reduction_ms))
            .collect();
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let LinearFit {
            slope,
            intercept,
            r_squared,
        } = linear_fit(&xs, &ys);
        let ci = bootstrap_slope_ci(&xs, &ys, 400, 0.95, 0xF169 ^ loss.to_bits());
        let binned_median_slope = binned_median_fit(&points);
        series.push(Fig9Series {
            loss_percent: loss,
            points,
            slope,
            intercept,
            r_squared,
            slope_ci95: (ci.lo, ci.hi),
            binned_median_slope,
        });
    }
    Fig9 { series }
}

/// OLS over the medians of ten equal-count bins ordered by x.
fn binned_median_fit(points: &[(f64, f64)]) -> f64 {
    let mut sorted: Vec<(f64, f64)> = points.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let bins = 10.min(sorted.len());
    if bins < 2 {
        return f64::NAN;
    }
    let mut bx = Vec::with_capacity(bins);
    let mut by = Vec::with_capacity(bins);
    for b in 0..bins {
        let lo = b * sorted.len() / bins;
        let hi = ((b + 1) * sorted.len() / bins).max(lo + 1);
        let xs: Vec<f64> = sorted[lo..hi].iter().map(|p| p.0).collect();
        let ys: Vec<f64> = sorted[lo..hi].iter().map(|p| p.1).collect();
        bx.push(median(&xs));
        by.push(median(&ys));
    }
    if bx.iter().all(|&x| x == bx[0]) {
        return f64::NAN;
    }
    linear_fit(&bx, &by).slope
}

impl Fig9 {
    /// The fitted slopes, in input order.
    pub fn slopes(&self) -> Vec<f64> {
        self.series.iter().map(|s| s.slope).collect()
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 9: PLT reduction vs CDN resource count under loss (fitted lines)"
        )?;
        writeln!(
            f,
            "{:>8} {:>10} {:>22} {:>12} {:>8} {:>14}",
            "loss %", "slope", "95% CI", "intercept", "R^2", "binned-median"
        )?;
        for s in &self.series {
            writeln!(
                f,
                "{:>8.1} {:>10.2} {:>10.2}..{:<10.2} {:>12.1} {:>8.3} {:>14.2}",
                s.loss_percent,
                s.slope,
                s.slope_ci95.0,
                s.slope_ci95.1,
                s.intercept,
                s.r_squared,
                s.binned_median_slope
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn::{CampaignConfig, MeasurementCampaign};

    #[test]
    fn loss_amplifies_reduction() {
        // OLS slopes at this scale are noise-dominated, so pin the robust
        // core: mean reduction grows substantially with loss; EXPERIMENTS.md
        // records the paper-scale slope ordering.
        // Lossy page loads are heavy-tailed, so single-seed means swing;
        // pool three independent corpora before comparing.
        let mut clean_points = Vec::new();
        let mut lossy_points = Vec::new();
        for seed in [66, 67, 68] {
            let campaign = MeasurementCampaign::new(CampaignConfig::small(8, seed));
            let fig = run_with_repeats(&campaign, Vantage::Utah, &[0.0, 2.0], 2);
            assert_eq!(fig.series.len(), 2);
            assert_eq!(fig.series[0].points.len(), 16);
            for s in &fig.series {
                assert!(s.slope_ci95.0 <= s.slope && s.slope <= s.slope_ci95.1);
            }
            clean_points.extend(fig.series[0].points.iter().map(|p| p.1));
            lossy_points.extend(fig.series[1].points.iter().map(|p| p.1));
        }
        // The amplification lives in the mean: pages whose slowest chain
        // is H3-capable gain heavily under loss (HoL + 200 ms TCP RTO
        // floor vs QUIC's PTO), while pages whose critical path is pinned
        // to an H2-only provider gain nothing in either mode.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let clean = mean(&clean_points);
        let lossy = mean(&lossy_points);
        assert!(
            lossy > clean,
            "2% loss must amplify H3's advantage: {clean:.1} -> {lossy:.1}"
        );
    }
}
