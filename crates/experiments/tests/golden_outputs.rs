//! Golden-output determinism gate, driven through the real experiment
//! binaries.
//!
//! The hot-path overhaul (timer-wheel queue, pooled packets, re-arm
//! dedup) is only admissible because it is bit-invisible: the JSON an
//! experiment binary prints must be byte-identical across refactors
//! and across `--jobs` levels. These tests pin the SHA-256 of two
//! representative stdout streams. If a change moves these hashes it
//! either broke determinism or intentionally changed simulation
//! semantics — in the latter case, re-record the constants and say so
//! in the PR.

use std::process::Command;

/// `fig2 --pages 6 --seed 11 --json` — the page-load throughput sweep.
const FIG2_SHA256: &str = "7f85ad44402a2426547593ca2a7a5f7fd6b938323ae686a41e5030c6da34155e";

/// `fault_matrix --smoke --json` — the fault-injection campaign.
const FAULT_MATRIX_SHA256: &str =
    "bd71361f74a2bde4b4cf78fe58f939c8ab9c70df1b443b0abc1ff41d6fd65b2b";

fn stdout_sha256(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "{bin} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    sha256_hex(&out.stdout)
}

#[test]
fn fig2_json_is_golden_at_one_job() {
    let h = stdout_sha256(
        env!("CARGO_BIN_EXE_fig2"),
        &["--pages", "6", "--seed", "11", "--json", "--jobs", "1"],
    );
    assert_eq!(h, FIG2_SHA256, "fig2 stdout drifted from the golden hash");
}

#[test]
fn fig2_json_is_jobs_invariant() {
    let h = stdout_sha256(
        env!("CARGO_BIN_EXE_fig2"),
        &["--pages", "6", "--seed", "11", "--json", "--jobs", "4"],
    );
    assert_eq!(h, FIG2_SHA256, "fig2 stdout depends on --jobs");
}

#[test]
fn fault_matrix_json_is_golden_at_one_job() {
    let h = stdout_sha256(
        env!("CARGO_BIN_EXE_fault_matrix"),
        &["--smoke", "--json", "--jobs", "1"],
    );
    assert_eq!(
        h, FAULT_MATRIX_SHA256,
        "fault_matrix stdout drifted from the golden hash"
    );
}

#[test]
fn fault_matrix_json_is_jobs_invariant() {
    let h = stdout_sha256(
        env!("CARGO_BIN_EXE_fault_matrix"),
        &["--smoke", "--json", "--jobs", "4"],
    );
    assert_eq!(
        h, FAULT_MATRIX_SHA256,
        "fault_matrix stdout depends on --jobs"
    );
}

// --- Minimal SHA-256 (FIPS 180-4), kept local so the test needs no
// --- new dependencies. Verified against `sha256sum` below.

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

fn sha256_hex(data: &[u8]) -> String {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64) * 8;
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *s = s.wrapping_add(v);
        }
    }
    let mut hex = String::with_capacity(64);
    for word in h {
        use std::fmt::Write as _;
        let _ = write!(hex, "{word:08x}");
    }
    hex
}

#[test]
fn sha256_matches_known_vectors() {
    assert_eq!(
        sha256_hex(b""),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    );
    assert_eq!(
        sha256_hex(b"abc"),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
    // Cross the one-block boundary (56-byte padding edge).
    assert_eq!(
        sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    );
}
