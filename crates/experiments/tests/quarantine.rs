//! End-to-end quarantine and resume behavior of the experiment
//! binaries, driven through the real executables.

use std::path::PathBuf;
use std::process::{Command, Output};

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("h3cdn-exp-quarantine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run(bin: &str, args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(bin);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("binary runs")
}

#[test]
fn chaos_page_is_quarantined_and_the_table_still_prints() {
    let out = run(
        env!("CARGO_BIN_EXE_fig2"),
        &[
            "--pages",
            "4",
            "--seed",
            "11",
            "--jobs",
            "2",
            "--max-retries",
            "2",
        ],
        &[("H3CDN_PANIC_SITE", "1")],
    );
    assert!(out.status.success(), "fig2 must survive a poisoned page");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stdout.trim().is_empty(), "the figure still prints");
    assert!(
        stderr.contains("quarantined job(s)"),
        "quarantine summary on stderr: {stderr}"
    );
    assert!(
        stderr.contains("--bin visit_one") && stderr.contains("--site 1"),
        "repro command recorded: {stderr}"
    );
    assert!(
        stderr.contains("H3CDN_PANIC_SITE=1"),
        "repro re-arms the chaos hook: {stderr}"
    );
}

#[test]
fn quarantine_repro_command_replays_the_panic() {
    // The repro the quarantine points at: visit_one with the chaos
    // hook armed panics in the foreground ...
    let bad = run(
        env!("CARGO_BIN_EXE_visit_one"),
        &[
            "--pages",
            "4",
            "--seed",
            "11",
            "--site",
            "1",
            "--vantage",
            "utah",
            "--mode",
            "h3",
        ],
        &[("H3CDN_PANIC_SITE", "1")],
    );
    assert!(!bad.status.success(), "the repro must reproduce the panic");
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(
        stderr.contains("deliberately injected panic at site 1"),
        "panic payload visible: {stderr}"
    );

    // ... and without the hook the very same visit completes, proving
    // the failure was the injected fault and not the page.
    let good = run(
        env!("CARGO_BIN_EXE_visit_one"),
        &[
            "--pages",
            "4",
            "--seed",
            "11",
            "--site",
            "1",
            "--vantage",
            "utah",
            "--mode",
            "h3",
        ],
        &[],
    );
    assert!(good.status.success(), "clean replay completes");
    let stdout = String::from_utf8_lossy(&good.stdout);
    assert!(
        stdout.contains("site 1 h3 @ Utah"),
        "summary line: {stdout}"
    );
}

#[test]
fn interrupted_checkpoint_resumes_to_identical_stdout() {
    let dir = scratch("resume");
    let results = dir.to_string_lossy().into_owned();
    let args = |extra: &[&str]| -> Vec<String> {
        let mut a: Vec<String> = [
            "--pages",
            "3",
            "--seed",
            "11",
            "--json",
            "--results-dir",
            &results,
            "--run-id",
            "itest",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        a.extend(extra.iter().map(|s| (*s).to_owned()));
        a
    };

    // Ground truth: a plain uncheckpointed run.
    let clean = run(
        env!("CARGO_BIN_EXE_fig6"),
        &["--pages", "3", "--seed", "11", "--json"],
        &[],
    );
    assert!(clean.status.success());

    // Checkpointed run, then delete part of the journal to simulate a
    // kill mid-run, then resume at a different worker count.
    let first = run(
        env!("CARGO_BIN_EXE_fig6"),
        &args(&["--jobs", "1"])
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
        &[],
    );
    assert!(first.status.success());
    assert_eq!(first.stdout, clean.stdout, "checkpointing is transparent");

    let mut jobs: Vec<PathBuf> = Vec::new();
    let mut stack = vec![dir.join(".runs/itest/jobs")];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("journal dir").flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                jobs.push(p);
            }
        }
    }
    jobs.sort();
    assert!(jobs.len() >= 2, "journal populated: {jobs:?}");
    for dropped in &jobs[..jobs.len() / 2] {
        std::fs::remove_file(dropped).expect("simulate interruption");
    }

    let resumed = run(
        env!("CARGO_BIN_EXE_fig6"),
        &args(&["--resume", "--jobs", "4"])
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
        &[],
    );
    assert!(resumed.status.success());
    assert_eq!(
        resumed.stdout, clean.stdout,
        "resumed stdout is byte-identical to the uninterrupted run"
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("loaded from checkpoint journal"),
        "resume reported: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
