//! Property-based tests of the simulation primitives against reference
//! models.

use h3cdn_sim_core::{EventQueue, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// The event queue pops in exactly the order of a stable sort by
    /// (time, insertion index) — checked against a model.
    #[test]
    fn event_queue_matches_stable_sort_model(
        times in prop::collection::vec(0u64..1_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut model: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        model.sort_by_key(|&(t, i)| (t, i)); // stable by construction
        let popped: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, i)| (t.as_nanos(), i)).collect();
        prop_assert_eq!(popped, model);
    }

    /// Uniform draws stay in range and fill the space.
    #[test]
    fn next_below_uniformity(seed in 0u64..10_000, bound in 1u64..100) {
        let mut rng = SimRng::seed_from(seed);
        let mut seen = vec![false; bound as usize];
        for _ in 0..(bound * 60) {
            let x = rng.next_below(bound);
            prop_assert!(x < bound);
            seen[x as usize] = true;
        }
        let coverage = seen.iter().filter(|&&b| b).count() as f64 / bound as f64;
        prop_assert!(coverage > 0.9, "coverage {coverage}");
    }

    /// Time arithmetic round-trips and orders correctly.
    #[test]
    fn time_arithmetic_consistency(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let t = SimTime::from_nanos(a);
        let d = SimDuration::from_nanos(b);
        let forward = t + d;
        prop_assert_eq!(forward.saturating_duration_since(t), d);
        prop_assert_eq!(forward - d, t);
        prop_assert!(forward >= t);
    }

    /// Forked streams are reproducible and label-distinct.
    #[test]
    fn forks_reproducible_and_distinct(seed in 0u64..10_000, label in 0u64..1_000) {
        let parent = SimRng::seed_from(seed);
        let mut a = parent.fork(label);
        let mut b = parent.fork(label);
        let mut c = parent.fork(label.wrapping_add(1));
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        prop_assert_eq!(&xs, &ys);
        prop_assert_ne!(&xs, &zs);
    }
}
