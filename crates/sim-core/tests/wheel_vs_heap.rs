//! Differential test: the timer-wheel [`EventQueue`] against the legacy
//! [`LegacyEventQueue`] `BinaryHeap` oracle.
//!
//! The oracle is the simplest possible embodiment of the `(time, seq)`
//! stability contract. Any divergence in pop order — including among
//! same-instant FIFO ties and far-future overflow times — is a
//! determinism bug: experiment reruns would stop being bit-identical.

use h3cdn_sim_core::{EventQueue, LegacyEventQueue, SimTime};
use proptest::prelude::*;

/// Time offsets chosen to land in every wheel region: the cursor slot,
/// other level-0 slots, level-1 slots, past the ≈4.3 s level-1 window
/// (overflow), and the `SimTime::MAX` sentinel.
const OFFSETS: &[u64] = &[
    0,               // exact tie with the current instant
    1,               // same L0 slot
    70_000,          // next L0 slot (slot width 2^16 ns)
    1 << 20,         // a later L0 slot
    20_000_000,      // next L1 slot (slot width 2^24 ns)
    1 << 30,         // ~1 s: far L1 slot
    5_000_000_000,   // past the L1 window: overflow
    300_000_000_000, // visit-deadline scale: deep overflow
    u64::MAX,        // SimTime::MAX sentinel
];

/// Replays one random interleaving on both queues: `(true, o)` schedules
/// an event at `last_popped + OFFSETS[o]`, `(false, _)` pops from both
/// and compares. Panics on any divergence.
fn run_interleaving(steps: &[(bool, u8)]) {
    let mut wheel = EventQueue::new();
    let mut oracle = LegacyEventQueue::new();
    let mut now = 0u64; // time of the last popped event
    let mut id = 0u32;
    for &(schedule, o) in steps {
        if schedule {
            let offset = OFFSETS[o as usize % OFFSETS.len()];
            let at = SimTime::from_nanos(now.saturating_add(offset));
            if offset == 0 {
                // Exercise the dedicated fast path for "schedule at the
                // instant being dispatched".
                wheel.schedule_now(at, id);
            } else {
                wheel.schedule(at, id);
            }
            oracle.schedule(at, id);
            id += 1;
        } else {
            prop_assert_eq!(wheel.peek_time(), oracle.peek_time());
            let expected = oracle.pop();
            let got = wheel.pop();
            prop_assert_eq!(got, expected);
            if let Some((t, _)) = got {
                now = t.as_nanos();
            }
        }
        prop_assert_eq!(wheel.len(), oracle.len());
        prop_assert_eq!(wheel.is_empty(), oracle.is_empty());
    }
    // Drain both queues: the tails must agree event-for-event too.
    loop {
        let expected = oracle.pop();
        prop_assert_eq!(wheel.pop(), expected);
        if expected.is_none() {
            break;
        }
    }
}

proptest! {
    /// Random schedule/pop interleavings across every wheel region pop in
    /// identical order on the wheel and the heap oracle.
    #[test]
    fn wheel_matches_heap_on_random_interleavings(
        steps in prop::collection::vec((prop::bool::ANY, 0u8..255), 1..400),
    ) {
        run_interleaving(&steps);
    }

    /// Same-instant bursts (the engine's common case: a node emits several
    /// packets while handling one event) stay FIFO.
    #[test]
    fn same_instant_bursts_stay_fifo(
        burst_sizes in prop::collection::vec(1usize..20, 1..30),
        gap_ns in 0u64..100_000_000,
    ) {
        let mut wheel = EventQueue::new();
        let mut oracle = LegacyEventQueue::new();
        let mut id = 0u32;
        let mut t = 0u64;
        for &n in &burst_sizes {
            for _ in 0..n {
                wheel.schedule(SimTime::from_nanos(t), id);
                oracle.schedule(SimTime::from_nanos(t), id);
                id += 1;
            }
            t = t.saturating_add(gap_ns);
        }
        while let Some(expected) = oracle.pop() {
            prop_assert_eq!(wheel.pop(), Some(expected));
        }
        prop_assert!(wheel.is_empty());
    }

    /// `pop_at_or_before` agrees with the oracle's peek-then-pop protocol
    /// for arbitrary deadlines.
    #[test]
    fn pop_at_or_before_matches_peek_then_pop(
        times in prop::collection::vec(0u8..255, 1..100),
        deadlines in prop::collection::vec(0u8..255, 1..150),
    ) {
        let mut wheel = EventQueue::new();
        let mut oracle = LegacyEventQueue::new();
        for (i, &o) in times.iter().enumerate() {
            let at = SimTime::from_nanos(OFFSETS[o as usize % OFFSETS.len()]);
            wheel.schedule(at, i);
            oracle.schedule(at, i);
        }
        for &d in &deadlines {
            // Bias deadlines onto the same scale as the scheduled times.
            let deadline = SimTime::from_nanos(
                OFFSETS[d as usize % OFFSETS.len()].saturating_add(u64::from(d)),
            );
            let expected = match oracle.peek_time() {
                Some(t) if t <= deadline => oracle.pop(),
                _ => None,
            };
            prop_assert_eq!(wheel.pop_at_or_before(deadline), expected);
        }
    }
}
