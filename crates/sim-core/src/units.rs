//! Byte-count and data-rate units.
//!
//! [`ByteCount`] and [`DataRate`] are newtypes that keep payload sizes and
//! link speeds from being confused with each other or with raw integers,
//! and centralise the one conversion the network simulator performs
//! constantly: *how long does it take to serialise N bytes at rate R?*

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use crate::time::SimDuration;

/// A number of bytes.
///
/// # Example
///
/// ```
/// use h3cdn_sim_core::units::ByteCount;
///
/// let hdr = ByteCount::new(40);
/// let body = ByteCount::from_kib(1);
/// assert_eq!((hdr + body).as_u64(), 40 + 1024);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteCount(u64);

impl ByteCount {
    /// Zero bytes.
    pub const ZERO: ByteCount = ByteCount(0);

    /// Creates a byte count.
    pub const fn new(bytes: u64) -> Self {
        ByteCount(bytes)
    }

    /// Creates a byte count from binary kilobytes (1 KiB = 1024 B).
    pub const fn from_kib(kib: u64) -> Self {
        ByteCount(kib * 1024)
    }

    /// Creates a byte count from binary megabytes.
    pub const fn from_mib(mib: u64) -> Self {
        ByteCount(mib * 1024 * 1024)
    }

    /// Returns the raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the count as fractional KiB.
    pub fn as_kib_f64(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Returns `true` for an empty count.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteCount) -> ByteCount {
        ByteCount(self.0.saturating_sub(other.0))
    }

    /// Returns the smaller count.
    pub fn min(self, other: ByteCount) -> ByteCount {
        ByteCount(self.0.min(other.0))
    }

    /// Returns the larger count.
    pub fn max(self, other: ByteCount) -> ByteCount {
        ByteCount(self.0.max(other.0))
    }
}

impl Add for ByteCount {
    type Output = ByteCount;
    fn add(self, rhs: ByteCount) -> ByteCount {
        ByteCount(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteCount {
    fn add_assign(&mut self, rhs: ByteCount) {
        *self = *self + rhs;
    }
}

impl Sub for ByteCount {
    type Output = ByteCount;
    fn sub(self, rhs: ByteCount) -> ByteCount {
        debug_assert!(self.0 >= rhs.0, "ByteCount subtraction underflow");
        ByteCount(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for ByteCount {
    fn sum<I: Iterator<Item = ByteCount>>(iter: I) -> ByteCount {
        iter.fold(ByteCount::ZERO, Add::add)
    }
}

impl From<u64> for ByteCount {
    fn from(bytes: u64) -> Self {
        ByteCount(bytes)
    }
}

impl fmt::Debug for ByteCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteCount({}B)", self.0)
    }
}

impl fmt::Display for ByteCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.2}MiB", self.0 as f64 / (1024.0 * 1024.0))
        } else if self.0 >= 1024 {
            write!(f, "{:.2}KiB", self.as_kib_f64())
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A data rate in bits per second.
///
/// # Example
///
/// ```
/// use h3cdn_sim_core::units::{ByteCount, DataRate};
///
/// let rate = DataRate::from_mbps(8); // 1 MB/s
/// let t = rate.transmission_time(ByteCount::new(1_000_000));
/// assert_eq!(t.as_secs_f64(), 1.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataRate(u64);

impl DataRate {
    /// Creates a rate from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero; a zero-rate link cannot transmit.
    pub fn from_bps(bps: u64) -> Self {
        assert!(bps > 0, "data rate must be positive");
        DataRate(bps)
    }

    /// Creates a rate from kilobits per second.
    pub fn from_kbps(kbps: u64) -> Self {
        DataRate::from_bps(kbps * 1_000)
    }

    /// Creates a rate from megabits per second.
    pub fn from_mbps(mbps: u64) -> Self {
        DataRate::from_bps(mbps * 1_000_000)
    }

    /// Creates a rate from gigabits per second.
    pub fn from_gbps(gbps: u64) -> Self {
        DataRate::from_bps(gbps * 1_000_000_000)
    }

    /// Returns the raw bits-per-second value.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Returns the time needed to serialise `bytes` onto a link at this
    /// rate.
    pub fn transmission_time(self, bytes: ByteCount) -> SimDuration {
        let bits = bytes.as_u64() as u128 * 8;
        let nanos = bits * 1_000_000_000 / self.0 as u128;
        SimDuration::from_nanos(nanos.min(u64::MAX as u128) as u64)
    }
}

impl fmt::Debug for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DataRate({}bps)", self.0)
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gbps", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}Mbps", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}Kbps", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_count_arithmetic() {
        let a = ByteCount::new(100);
        let b = ByteCount::new(28);
        assert_eq!((a + b).as_u64(), 128);
        assert_eq!((a - b).as_u64(), 72);
        assert_eq!(a.saturating_sub(ByteCount::new(200)), ByteCount::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn byte_count_units() {
        assert_eq!(ByteCount::from_kib(2).as_u64(), 2048);
        assert_eq!(ByteCount::from_mib(1).as_u64(), 1024 * 1024);
        assert!((ByteCount::from_kib(3).as_kib_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn byte_count_sum() {
        let total: ByteCount = (1..=3).map(ByteCount::new).sum();
        assert_eq!(total.as_u64(), 6);
    }

    #[test]
    fn transmission_time_scales_linearly() {
        let rate = DataRate::from_mbps(100);
        let t1 = rate.transmission_time(ByteCount::new(1250)); // 10_000 bits
        assert_eq!(t1, SimDuration::from_micros(100));
        let t2 = rate.transmission_time(ByteCount::new(2500));
        assert_eq!(t2, SimDuration::from_micros(200));
    }

    #[test]
    fn transmission_time_zero_bytes_is_zero() {
        let rate = DataRate::from_gbps(1);
        assert_eq!(rate.transmission_time(ByteCount::ZERO), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = DataRate::from_bps(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ByteCount::new(17).to_string(), "17B");
        assert_eq!(ByteCount::from_kib(2).to_string(), "2.00KiB");
        assert_eq!(DataRate::from_mbps(10).to_string(), "10.00Mbps");
        assert_eq!(DataRate::from_kbps(5).to_string(), "5.00Kbps");
    }
}
