//! Virtual time for the simulation.
//!
//! [`SimTime`] is an absolute instant on the simulation clock and
//! [`SimDuration`] is a span between two instants. Both are newtypes over a
//! `u64` nanosecond count ([C-NEWTYPE]), so the type system prevents mixing
//! instants with spans, and all arithmetic is saturating-free and explicit.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// simulation epoch.
///
/// # Example
///
/// ```
/// use h3cdn_sim_core::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_millis_f64(), 3.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use h3cdn_sim_core::SimDuration;
///
/// let rtt = SimDuration::from_millis(20);
/// assert_eq!(rtt / 2, SimDuration::from_millis(10));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far"
    /// sentinel for timer slots that are not armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a raw nanosecond count.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns the raw nanosecond count since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional milliseconds since the epoch.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the time elapsed since `earlier`, or [`SimDuration::ZERO`]
    /// when `earlier` is in the future (saturating).
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span; used as an "off" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis_f64(millis: f64) -> Self {
        assert!(
            millis.is_finite() && millis >= 0.0,
            "duration must be finite and non-negative, got {millis}"
        );
        SimDuration((millis * 1_000_000.0).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns `true` when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative float, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `rhs` is later than `self`; use
    /// [`SimTime::saturating_duration_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.3}ms)", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.3}ms)", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(1_500_000);
        let d = SimDuration::from_micros(500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn from_millis_f64_rounds() {
        assert_eq!(
            SimDuration::from_millis_f64(1.5),
            SimDuration::from_micros(1500)
        );
        assert_eq!(SimDuration::from_millis_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_millis_f64_rejects_negative() {
        let _ = SimDuration::from_millis_f64(-1.0);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(late.saturating_duration_since(early).as_nanos(), 10);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(15));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn min_max_order() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_nanos(1);
        let tb = SimTime::from_nanos(2);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_in_millis() {
        assert_eq!(
            SimDuration::from_micros(1500).to_string(),
            "1.500ms".to_string()
        );
        assert_eq!(
            (SimTime::ZERO + SimDuration::from_millis(2)).to_string(),
            "2.000ms"
        );
    }

    #[test]
    fn addition_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }
}
