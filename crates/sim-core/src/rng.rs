//! Seeded, splittable pseudo-randomness for deterministic simulation.
//!
//! [`SimRng`] wraps a 64-bit PCG-XSH-RR style generator seeded through
//! SplitMix64. Independent subsystem streams are derived with
//! [`SimRng::fork`] so, e.g., the loss process on one link never perturbs
//! the workload generator — adding a subsystem cannot silently reshuffle
//! another's draws.
//!
//! The distribution helpers cover exactly what the reproduction needs:
//! uniform ranges, Bernoulli coin flips (packet loss, adoption decisions),
//! exponential (think-time spacing), log-normal (resource sizes, which are
//! heavy-tailed — 75 % of CDN resources are below 20 KB in the paper), and
//! weighted choice (CDN provider market share).

/// A deterministic 64-bit pseudo-random generator.
///
/// # Example
///
/// ```
/// use h3cdn_sim_core::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds give identical streams.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        let state = splitmix64(&mut s);
        let inc = splitmix64(&mut s) | 1; // stream selector must be odd
        let mut rng = SimRng { state, inc };
        // Decorrelate the first output from the raw seed.
        rng.next_u64();
        rng
    }

    /// Derives an independent stream labelled by `label`.
    ///
    /// Forks with distinct labels from the same parent are statistically
    /// independent; the parent's own stream is not advanced.
    pub fn fork(&self, label: u64) -> SimRng {
        let mut s = self
            .state
            .wrapping_mul(PCG_MULT)
            .wrapping_add(label.wrapping_mul(0xD6E8FEB86659FD93) | 1);
        let state = splitmix64(&mut s);
        let inc = splitmix64(&mut s) | 1;
        let mut rng = SimRng { state, inc };
        rng.next_u64();
        rng
    }

    /// Returns the next 64 raw pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        // PCG-XSH-RR on 64-bit state (two 32-bit halves combined); simple
        // and fast, with quality far beyond what the simulation needs.
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        let hi = xorshifted.rotate_right(rot) as u64;
        let old2 = self.state;
        self.state = old2.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted2 = (((old2 >> 18) ^ old2) >> 27) as u32;
        let rot2 = (old2 >> 59) as u32;
        let lo = xorshifted2.rotate_right(rot2) as u64;
        (hi << 32) | lo
    }

    /// Returns a float uniform on `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns an integer uniform on `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift with rejection for exact uniformity.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns an integer uniform on the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns a float uniform on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + self.next_f64() * (hi - lo)
    }

    /// Flips a coin that lands `true` with probability `p`.
    ///
    /// `p` outside `[0, 1]` is clamped.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Samples a standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64(); // avoid ln(0)
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples a log-normal distribution parameterised by the mean `mu` and
    /// standard deviation `sigma` of the underlying normal.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is not finite.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Samples a Pareto distribution with shape `alpha` and scale `xmin`
    /// (the minimum value) via inverse-CDF transform.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` or `xmin` is not positive and finite.
    pub fn pareto(&mut self, alpha: f64, xmin: f64) -> f64 {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        assert!(xmin.is_finite() && xmin > 0.0, "xmin must be positive");
        let u = 1.0 - self.next_f64(); // in (0, 1]
        xmin * u.powf(-1.0 / alpha)
    }

    /// Samples a bounded (truncated) Pareto distribution on `[lo, hi]` with
    /// shape `alpha`, via the inverse CDF of the truncated law. `u = 0`
    /// maps to `lo` and `u -> 1` approaches `hi`, so every sample lies in
    /// the closed interval.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite or `0 < lo < hi` does
    /// not hold.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        assert!(
            lo.is_finite() && hi.is_finite() && lo > 0.0 && lo < hi,
            "bounds must satisfy 0 < lo < hi"
        );
        let u = self.next_f64();
        let ratio = (lo / hi).powf(alpha);
        lo * (1.0 - u * (1.0 - ratio)).powf(-1.0 / alpha)
    }

    /// Picks an index with probability proportional to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1 // floating-point slack lands on the last bucket
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Chooses a uniformly random element of a non-empty slice.
    ///
    /// Returns `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.next_below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 3,
            "streams should be uncorrelated, {same} collisions"
        );
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let parent = SimRng::seed_from(99);
        let mut c1 = parent.fork(1);
        let mut c1_again = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_bounded_and_covers() {
        let mut rng = SimRng::seed_from(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.next_below(10) as usize;
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut rng = SimRng::seed_from(5);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed_from(6);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::seed_from(8);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn log_normal_median_is_exp_mu() {
        let mut rng = SimRng::seed_from(9);
        let n = 50_000;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.log_normal(2.0, 1.0)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        let expect = 2.0f64.exp();
        assert!(
            (median / expect - 1.0).abs() < 0.05,
            "median {median} vs {expect}"
        );
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let mut rng = SimRng::seed_from(12);
        let n = 100_000;
        let alpha = 1.5;
        let xmin = 2.0;
        let samples: Vec<f64> = (0..n).map(|_| rng.pareto(alpha, xmin)).collect();
        assert!(samples.iter().all(|&x| x >= xmin));
        // P(X > t) = (xmin / t)^alpha; check at t = 2 * xmin.
        let t = 2.0 * xmin;
        let tail = samples.iter().filter(|&&x| x > t).count() as f64 / n as f64;
        let expect = (xmin / t).powf(alpha);
        assert!((tail - expect).abs() < 0.01, "tail {tail} vs {expect}");
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let mut rng = SimRng::seed_from(13);
        let (alpha, lo, hi) = (1.22, 30.0, 4000.0);
        let n = 50_000;
        let mut max_seen = 0.0f64;
        for _ in 0..n {
            let x = rng.bounded_pareto(alpha, lo, hi);
            assert!((lo..=hi).contains(&x), "sample {x} out of range");
            max_seen = max_seen.max(x);
        }
        // The upper bound is reachable: the top of the support gets hit.
        assert!(max_seen > 0.5 * hi, "max {max_seen} never approached hi");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed_from(10);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = SimRng::seed_from(12);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn range_inclusive_hits_bounds() {
        let mut rng = SimRng::seed_from(13);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match rng.range_inclusive(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(rng.range_inclusive(9, 9), 9);
    }
}
