//! A stable, timestamped event queue.
//!
//! [`EventQueue`] orders events primarily by their scheduled [`SimTime`] and
//! secondarily by insertion order, so events scheduled for the same instant
//! pop in FIFO order. Stability matters for determinism: without it, the
//! relative order of simultaneous packet arrivals would depend on heap
//! internals and reruns would diverge.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A priority queue of `(SimTime, E)` pairs popped in chronological order,
/// FIFO among ties.
///
/// # Example
///
/// ```
/// use h3cdn_sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_nanos(7);
/// q.schedule(t, "first");
/// q.schedule(t, "second");
/// assert_eq!(q.pop(), Some((t, "first")));
/// assert_eq!(q.pop(), Some((t, "second")));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the chronologically next event, or `None` when
    /// the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, keeping the sequence counter so stability
    /// is preserved across the clear.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(at(3), 'c');
        q.schedule(at(1), 'a');
        q.schedule(at(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(at(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_preserve_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(at(1), "early-1");
        q.schedule(at(2), "late-1");
        q.schedule(at(1), "early-2");
        q.schedule(at(2), "late-2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["early-1", "early-2", "late-1", "late-2"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(at(9), ());
        assert_eq!(q.peek_time(), Some(at(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_but_keeps_stability() {
        let mut q = EventQueue::new();
        q.schedule(at(1), 1);
        q.clear();
        assert!(q.is_empty());
        q.schedule(at(1), 2);
        q.schedule(at(1), 3);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        assert_eq!(q.pop().map(|(_, e)| e), Some(3));
    }
}
