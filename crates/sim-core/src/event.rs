//! A stable, timestamped event queue.
//!
//! [`EventQueue`] orders events primarily by their scheduled [`SimTime`] and
//! secondarily by insertion order, so events scheduled for the same instant
//! pop in FIFO order. Stability matters for determinism: without it, the
//! relative order of simultaneous packet arrivals would depend on queue
//! internals and reruns would diverge.
//!
//! # Implementation: a two-level timer wheel
//!
//! The queue is a hierarchical timer wheel, not a binary heap — the heap's
//! `O(log n)` sift per operation and pointer-chasing comparisons were the
//! single hottest queue cost in the simulator profile. The wheel gives
//! amortised `O(1)` schedule/pop for the near future:
//!
//! * **Level 0**: 256 slots of 2^16 ns (≈65 µs) each, covering exactly one
//!   level-1 slot (≈16.8 ms). L0 is *aligned* to the cursor's L1 slot, so
//!   slot index grows monotonically with time and the level never wraps
//!   mid-window.
//! * **Level 1**: 256 slots of 2^24 ns (≈16.8 ms) each, a ≈4.3 s window —
//!   comfortably past every RTT, RTO and congestion timer in the stack.
//!   When L0 drains, the next occupied L1 slot is redistributed into L0.
//! * **Overflow**: a `(time, seq)`-ordered heap for events beyond the L1
//!   window (visit deadlines, idle timers, `SimTime::MAX` sentinels).
//!   Whenever the window advances, newly in-window events are promoted.
//!
//! Occupied slots are tracked in per-level bitmaps so finding the next
//! event is a couple of `u64::trailing_zeros`. Within a slot the earliest
//! `(time, seq)` key is selected by linear scan — slots are ≈65 µs wide,
//! so occupancy is tiny — which is what preserves the FIFO stability
//! contract *exactly*: selection is by the same total order the old heap
//! used, merely bucketed.
//!
//! Events scheduled at or before the cursor (the engine schedules wakeups
//! at `now` routinely) go into the cursor's current slot; selection by
//! full key keeps them correctly ordered against everything else there,
//! and no earlier slot can be non-empty.
//!
//! The old heap survives as [`LegacyEventQueue`] (behind the default
//! `legacy-queue` feature) purely as a differential-test oracle — see
//! `tests/wheel_vs_heap.rs`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the level-0 slot width in nanoseconds (≈65 µs).
const L0_SHIFT: u32 = 16;
/// log2 of the level-1 slot width in nanoseconds (≈16.8 ms).
const L1_SHIFT: u32 = L0_SHIFT + SLOT_BITS;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Ring-index mask.
const SLOT_MASK: u64 = (SLOTS - 1) as u64;

/// A priority queue of `(SimTime, E)` pairs popped in chronological order,
/// FIFO among ties.
///
/// # Example
///
/// ```
/// use h3cdn_sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_nanos(7);
/// q.schedule(t, "first");
/// q.schedule(t, "second");
/// assert_eq!(q.pop(), Some((t, "first")));
/// assert_eq!(q.pop(), Some((t, "second")));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Level-0 slots, aligned to the cursor's L1 slot.
    l0: Vec<Vec<Entry<E>>>,
    /// Level-1 slots, a ring over the L1 window.
    l1: Vec<Vec<Entry<E>>>,
    /// Occupancy bitmap per level, one bit per slot.
    l0_occ: [u64; SLOTS / 64],
    l1_occ: [u64; SLOTS / 64],
    /// Events beyond the L1 window, earliest `(time, seq)` on top.
    overflow: BinaryHeap<Entry<E>>,
    /// Reusable buffer for draining an L1 slot into L0; its capacity
    /// circulates through the slots instead of being reallocated.
    drain_scratch: Vec<Entry<E>>,
    /// Time floor in nanoseconds: every event ever popped was ≤ `cursor`'s
    /// slot, and no pending event lives in a slot before it.
    cursor: u64,
    /// Pending event count (tracked, not recomputed).
    len: usize,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The total order the whole queue sorts by.
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq)
        // pops first.
        other.key().cmp(&self.key())
    }
}

/// Occupancy snapshot reported by [`EventQueue::stats`], so callers (the
/// engine's stall watchdog) read counters instead of recomputing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Total pending events.
    pub len: usize,
    /// Pending events in the far-future overflow level.
    pub overflow_len: usize,
    /// Allocated capacity of the overflow level.
    pub overflow_capacity: usize,
}

fn occ_set(occ: &mut [u64; SLOTS / 64], slot: usize) {
    if let Some(word) = occ.get_mut(slot >> 6) {
        *word |= 1 << (slot & 63);
    }
}

fn occ_clear(occ: &mut [u64; SLOTS / 64], slot: usize) {
    if let Some(word) = occ.get_mut(slot >> 6) {
        *word &= !(1 << (slot & 63));
    }
}

/// First occupied slot index ≥ `from`, without wrapping.
fn occ_next(occ: &[u64; SLOTS / 64], from: usize) -> Option<usize> {
    let mut word = from >> 6;
    let mut mask = !0u64 << (from & 63);
    while let Some(bits) = occ.get(word).map(|w| w & mask) {
        if bits != 0 {
            return Some((word << 6) + bits.trailing_zeros() as usize);
        }
        word += 1;
        mask = !0u64;
    }
    None
}

/// Index of the entry with the minimal `(time, seq)` key, or `None` for
/// an empty bucket. Keys are unique (the seq counter never repeats), so
/// the minimum is unambiguous.
fn min_key_index<E>(bucket: &[Entry<E>]) -> Option<usize> {
    bucket
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| e.key())
        .map(|(i, _)| i)
}

/// Distance (1..SLOTS) from ring index `from` to the nearest occupied slot,
/// scanning forward with wrap-around. The slot at `from` itself is never
/// occupied at the call sites (its events would have been placed a level
/// down), so distance 0 is not reported.
fn occ_next_wrap(occ: &[u64; SLOTS / 64], from: usize) -> Option<usize> {
    if let Some(slot) = occ_next(occ, from + 1) {
        return Some(slot - from);
    }
    occ_next(occ, 0).map(|slot| SLOTS - from + slot)
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with `capacity` reserved in the overflow
    /// level (the only part that reallocates on growth; wheel slots grow
    /// lazily and keep their capacity across [`EventQueue::clear`]).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            // One-time construction; slot capacity circulates afterwards.
            // h3cdn-lint: allow(hot-path-alloc)
            l0: (0..SLOTS).map(|_| Vec::new()).collect(),
            // h3cdn-lint: allow(hot-path-alloc)
            l1: (0..SLOTS).map(|_| Vec::new()).collect(),
            l0_occ: [0; SLOTS / 64],
            l1_occ: [0; SLOTS / 64],
            overflow: BinaryHeap::with_capacity(capacity),
            // h3cdn-lint: allow(hot-path-alloc)
            drain_scratch: Vec::new(),
            cursor: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.place(Entry { at, seq, event });
    }

    /// Fast path for scheduling at the current instant: `now` must be the
    /// time of the event being dispatched (i.e. ≤ the cursor's slot), which
    /// lets the queue skip level selection and push straight into the
    /// cursor slot. Falls back to [`EventQueue::schedule`] otherwise.
    pub fn schedule_now(&mut self, now: SimTime, event: E) {
        let idx = ((self.cursor >> L0_SHIFT) & SLOT_MASK) as usize;
        match self.l0.get_mut(idx) {
            Some(bucket) if now.as_nanos() >> L0_SHIFT <= self.cursor >> L0_SHIFT => {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.len += 1;
                bucket.push(Entry {
                    at: now,
                    seq,
                    event,
                });
                occ_set(&mut self.l0_occ, idx);
            }
            _ => self.schedule(now, event),
        }
    }

    /// Buckets an entry by its distance from the cursor. Entries at or
    /// before the cursor join the cursor's slot: no earlier slot can hold
    /// pending events, and within-slot selection is by full `(time, seq)`
    /// key, so ordering is preserved.
    fn place(&mut self, entry: Entry<E>) {
        // The overflow heap is a correct (if slower) home for any entry,
        // so the masked slot lookups degrade to it instead of panicking.
        let t = entry.at.as_nanos();
        let cur = self.cursor;
        if t <= cur {
            let idx = ((cur >> L0_SHIFT) & SLOT_MASK) as usize;
            match self.l0.get_mut(idx) {
                Some(bucket) => {
                    bucket.push(entry);
                    occ_set(&mut self.l0_occ, idx);
                }
                None => self.overflow.push(entry),
            }
        } else if t >> L1_SHIFT == cur >> L1_SHIFT {
            let idx = ((t >> L0_SHIFT) & SLOT_MASK) as usize;
            match self.l0.get_mut(idx) {
                Some(bucket) => {
                    bucket.push(entry);
                    occ_set(&mut self.l0_occ, idx);
                }
                None => self.overflow.push(entry),
            }
        } else if (t >> L1_SHIFT) - (cur >> L1_SHIFT) < SLOTS as u64 {
            let idx = ((t >> L1_SHIFT) & SLOT_MASK) as usize;
            match self.l1.get_mut(idx) {
                Some(bucket) => {
                    bucket.push(entry);
                    occ_set(&mut self.l1_occ, idx);
                }
                None => self.overflow.push(entry),
            }
        } else {
            self.overflow.push(entry);
        }
    }

    /// Moves overflow events that the advancing window now covers into the
    /// wheel. Must be called whenever the cursor's L1 slot changes.
    fn promote_overflow(&mut self) {
        let c1 = self.cursor >> L1_SHIFT;
        loop {
            let entry = match self.overflow.peek_mut() {
                Some(top) if (top.at.as_nanos() >> L1_SHIFT) - c1 < SLOTS as u64 => {
                    std::collections::binary_heap::PeekMut::pop(top)
                }
                _ => break,
            };
            self.place(entry);
        }
    }

    /// Advances the cursor until level 0 holds the next pending event and
    /// returns the first occupied L0 slot (which holds the global
    /// minimum), or `None` when the queue is empty.
    fn advance_to_l0(&mut self) -> Option<usize> {
        loop {
            let cur_idx = ((self.cursor >> L0_SHIFT) & SLOT_MASK) as usize;
            if let Some(slot) = occ_next(&self.l0_occ, cur_idx) {
                return Some(slot);
            }
            // L0 exhausted: redistribute the next occupied L1 slot.
            let c1 = self.cursor >> L1_SHIFT;
            if let Some(dist) = occ_next_wrap(&self.l1_occ, (c1 & SLOT_MASK) as usize) {
                // The slot holds an event with `t >> L1_SHIFT == abs`, so
                // `abs << L1_SHIFT` cannot overflow.
                let abs = c1 + dist as u64;
                let idx = (abs & SLOT_MASK) as usize;
                self.cursor = abs << L1_SHIFT;
                occ_clear(&mut self.l1_occ, idx);
                let Some(slot_bucket) = self.l1.get_mut(idx) else {
                    // Unreachable (idx is masked); the bit is already
                    // cleared, so rescanning makes progress.
                    continue;
                };
                // Swap the slot out through the scratch buffer so slot
                // capacities circulate instead of being reallocated.
                std::mem::swap(slot_bucket, &mut self.drain_scratch);
                self.promote_overflow();
                while let Some(entry) = self.drain_scratch.pop() {
                    // Drain order within a slot is irrelevant: selection
                    // is by the full (time, seq) key.
                    self.place(entry);
                }
                continue;
            }
            // Both levels empty: jump to the overflow minimum, if any.
            let top = self.overflow.peek()?;
            self.cursor = top.at.as_nanos();
            self.promote_overflow();
        }
    }

    /// Pops the minimum-key entry out of L0 slot `slot` (as returned by
    /// [`EventQueue::advance_to_l0`]).
    fn pop_l0(&mut self, slot: usize) -> Option<(SimTime, E)> {
        // Advance the cursor to the slot being drained (bit-or: the slot
        // lives in the cursor's L1 window, so this cannot overflow).
        self.cursor = self
            .cursor
            .max((self.cursor >> L1_SHIFT << L1_SHIFT) | ((slot as u64) << L0_SHIFT));
        let bucket = self.l0.get_mut(slot)?;
        let min = min_key_index(bucket)?;
        // swap_remove is safe for FIFO: order within a bucket is
        // irrelevant because selection is by the total (time, seq) key.
        let entry = bucket.swap_remove(min);
        if bucket.is_empty() {
            occ_clear(&mut self.l0_occ, slot);
        }
        self.len -= 1;
        Some((entry.at, entry.event))
    }

    /// Removes and returns the chronologically next event, or `None` when
    /// the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let slot = self.advance_to_l0()?;
        self.pop_l0(slot)
    }

    /// Removes and returns the next event if it is due at or before
    /// `deadline`. A single wheel walk — one occupancy scan, one bucket
    /// scan — replaces the `peek_time` + `pop` pair on the engine hot
    /// path.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let slot = self.advance_to_l0()?;
        // Cheap pre-check: if even the slot's start is past the deadline,
        // every event in or after it is too.
        let slot_start = (self.cursor >> L1_SHIFT << L1_SHIFT) | ((slot as u64) << L0_SHIFT);
        if slot_start > deadline.as_nanos() {
            return None;
        }
        let bucket = self.l0.get_mut(slot)?;
        let min = min_key_index(bucket)?;
        if bucket.get(min).is_none_or(|e| e.at > deadline) {
            return None;
        }
        let entry = bucket.swap_remove(min);
        if bucket.is_empty() {
            occ_clear(&mut self.l0_occ, slot);
        }
        self.len -= 1;
        self.cursor = self.cursor.max(slot_start);
        Some((entry.at, entry.event))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Layering invariant: L0 events precede all L1 events, which
        // precede all overflow events, so peek the first non-empty level.
        let cur_idx = ((self.cursor >> L0_SHIFT) & SLOT_MASK) as usize;
        if let Some(bucket) = occ_next(&self.l0_occ, cur_idx).and_then(|slot| self.l0.get(slot)) {
            return bucket.iter().min_by_key(|e| e.key()).map(|e| e.at);
        }
        let c1 = self.cursor >> L1_SHIFT;
        if let Some(dist) = occ_next_wrap(&self.l1_occ, (c1 & SLOT_MASK) as usize) {
            let idx = ((c1 + dist as u64) & SLOT_MASK) as usize;
            return self
                .l1
                .get(idx)
                .and_then(|bucket| bucket.iter().min_by_key(|e| e.key()))
                .map(|e| e.at);
        }
        self.overflow.peek().map(|e| e.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns occupancy counters for watchdog diagnostics.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            len: self.len,
            overflow_len: self.overflow.len(),
            overflow_capacity: self.overflow.capacity(),
        }
    }

    /// Drops all pending events, keeping the sequence counter so stability
    /// is preserved across the clear, and keeping slot capacity so a
    /// reused queue does not re-allocate.
    pub fn clear(&mut self) {
        for slot in self.l0.iter_mut().chain(self.l1.iter_mut()) {
            slot.clear();
        }
        self.l0_occ = [0; SLOTS / 64];
        self.l1_occ = [0; SLOTS / 64];
        self.overflow.clear();
        self.len = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// The pre-wheel `BinaryHeap` implementation, kept as the differential-test
/// oracle: it is the simplest possible embodiment of the `(time, seq)`
/// stability contract, against which the wheel's pop order is checked
/// event-for-event (see `tests/wheel_vs_heap.rs`). Not used on any hot
/// path; compiled behind the default `legacy-queue` feature.
#[cfg(feature = "legacy-queue")]
#[derive(Debug, Clone)]
pub struct LegacyEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[cfg(feature = "legacy-queue")]
impl<E> LegacyEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        LegacyEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the chronologically next event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Oracle mirror of [`EventQueue::pop_at_or_before`].
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek()?.at > deadline {
            return None;
        }
        self.pop()
    }

    /// Oracle mirror of [`EventQueue::schedule_now`] (no fast path).
    pub fn schedule_now(&mut self, now: SimTime, event: E) {
        self.schedule(now, event);
    }

    /// Oracle mirror of [`EventQueue::with_capacity`].
    pub fn with_capacity(capacity: usize) -> Self {
        LegacyEventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Oracle mirror of [`EventQueue::stats`].
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            len: self.heap.len(),
            overflow_len: 0,
            overflow_capacity: self.heap.capacity(),
        }
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(feature = "legacy-queue")]
impl<E> Default for LegacyEventQueue<E> {
    fn default() -> Self {
        LegacyEventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(at(3), 'c');
        q.schedule(at(1), 'a');
        q.schedule(at(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(at(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_preserve_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(at(1), "early-1");
        q.schedule(at(2), "late-1");
        q.schedule(at(1), "early-2");
        q.schedule(at(2), "late-2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["early-1", "early-2", "late-1", "late-2"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(at(9), ());
        assert_eq!(q.peek_time(), Some(at(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_but_keeps_stability() {
        let mut q = EventQueue::new();
        q.schedule(at(1), 1);
        q.clear();
        assert!(q.is_empty());
        q.schedule(at(1), 2);
        q.schedule(at(1), 3);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        assert_eq!(q.pop().map(|(_, e)| e), Some(3));
    }

    #[test]
    fn spans_every_level() {
        // One event per level (L0 / L1 / overflow), scheduled out of order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, "sentinel");
        q.schedule(at(10_000), "overflow");
        q.schedule(at(100), "l1");
        q.schedule(SimTime::from_nanos(50), "l0");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["l0", "l1", "overflow", "sentinel"]);
    }

    #[test]
    fn past_events_pop_before_future_ones() {
        let mut q = EventQueue::new();
        q.schedule(at(50), "future");
        assert_eq!(q.pop().map(|(_, e)| e), Some("future"));
        // The cursor now sits at ~50 ms; schedule into the past.
        q.schedule(at(10), "past");
        q.schedule(at(60), "later");
        assert_eq!(q.pop(), Some((at(10), "past")));
        assert_eq!(q.pop(), Some((at(60), "later")));
    }

    #[test]
    fn l1_window_slides_without_missing_events() {
        // Events spaced one L1 slot apart, then denser ones interleaved
        // after the window has advanced — exercises promotion + drain.
        let mut q = EventQueue::new();
        for i in 0..600u64 {
            q.schedule(SimTime::from_nanos(i << L1_SHIFT), i);
        }
        let mut prev = None;
        while let Some((t, i)) = q.pop() {
            assert_eq!(t.as_nanos(), i << L1_SHIFT);
            assert!(prev < Some(i), "must pop in order");
            prev = Some(i);
        }
        assert_eq!(prev, Some(599));
    }

    #[test]
    fn schedule_now_matches_schedule_ordering() {
        let mut q = EventQueue::new();
        q.schedule(at(5), "a");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        q.schedule_now(at(5), "now-1");
        q.schedule(at(5), "then");
        q.schedule_now(at(5), "now-2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["now-1", "then", "now-2"]);
    }

    #[test]
    fn pop_at_or_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(at(10), "early");
        q.schedule(at(30), "late");
        assert_eq!(q.pop_at_or_before(at(5)), None);
        assert_eq!(q.pop_at_or_before(at(10)), Some((at(10), "early")));
        assert_eq!(q.pop_at_or_before(at(20)), None);
        assert_eq!(q.pop_at_or_before(SimTime::MAX), Some((at(30), "late")));
        assert_eq!(q.pop_at_or_before(SimTime::MAX), None);
    }

    #[test]
    fn pop_at_or_before_handles_same_slot_deadline() {
        // Deadline inside the same L0 slot as a pending event that is
        // after it: the slot-start pre-check alone must not admit it.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), ());
        assert_eq!(q.pop_at_or_before(SimTime::from_nanos(50)), None);
        assert_eq!(
            q.pop_at_or_before(SimTime::from_nanos(100)),
            Some((SimTime::from_nanos(100), ()))
        );
    }

    #[test]
    fn stats_track_levels() {
        let mut q = EventQueue::with_capacity(16);
        assert!(q.stats().overflow_capacity >= 16);
        q.schedule(SimTime::from_nanos(1), ());
        q.schedule(SimTime::MAX, ());
        let stats = q.stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.overflow_len, 1);
        assert_eq!(q.len(), 2);
    }

    #[cfg(feature = "legacy-queue")]
    #[test]
    fn legacy_oracle_agrees_on_ties() {
        let mut wheel = EventQueue::new();
        let mut oracle = LegacyEventQueue::new();
        for i in 0..50u64 {
            let t = at(i % 7);
            wheel.schedule(t, i);
            oracle.schedule(t, i);
        }
        assert_eq!(wheel.peek_time(), oracle.peek_time());
        while let Some(expected) = oracle.pop() {
            assert_eq!(wheel.pop(), Some(expected));
        }
        assert!(wheel.is_empty());
    }
}
