//! Deterministic discrete-event simulation primitives for the `h3cdn`
//! reproduction of *"Dissecting the Applicability of HTTP/3 in Content
//! Delivery Networks"* (ICDCS 2024).
//!
//! This crate deliberately contains no protocol or network knowledge. It
//! provides the three things every layer above it needs:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`EventQueue`] — a stable priority queue of timestamped events,
//! * [`rng`] — seeded, splittable pseudo-random streams plus the
//!   distributions the workload model draws from.
//!
//! Everything is a pure function of its seed: two simulations constructed
//! with the same inputs produce bit-identical traces. Wall-clock time never
//! enters the crate.
//!
//! # Example
//!
//! ```
//! use h3cdn_sim_core::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(5), "b");
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(1), "a");
//! let (t, ev) = queue.pop().unwrap();
//! assert_eq!(ev, "a");
//! assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(1));
//! ```

pub mod event;
pub mod rng;
pub mod time;
pub mod units;

#[cfg(feature = "legacy-queue")]
pub use event::LegacyEventQueue;
pub use event::{EventQueue, QueueStats};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
