//! HAR entries and pages.

use serde::{Deserialize, Serialize};

/// Timing phases of one request, in fractional milliseconds (HAR 1.2
/// `timings` object; `ssl` is folded into `connect` as Chrome does when
/// reporting the combined handshake).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EntryTiming {
    /// Queueing before the request could be dispatched (pool limits,
    /// waiting for discovery).
    pub blocked_ms: f64,
    /// Name resolution (zero in-simulator; kept for HAR compatibility).
    pub dns_ms: f64,
    /// Transport + TLS handshake; zero for a reused connection.
    pub connect_ms: f64,
    /// Time to put the request on the wire.
    pub send_ms: f64,
    /// First request byte sent → first response byte received.
    pub wait_ms: f64,
    /// First response byte → last response byte.
    pub receive_ms: f64,
}

impl EntryTiming {
    /// Total entry time (sum of all phases).
    pub fn total_ms(&self) -> f64 {
        self.blocked_ms
            + self.dns_ms
            + self.connect_ms
            + self.send_ms
            + self.wait_ms
            + self.receive_ms
    }
}

/// One fetched resource, as recorded by the simulated browser.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HarEntry {
    /// Globally unique request id (matches the workload resource id).
    pub id: u64,
    /// Request URL.
    pub url: String,
    /// Hostname component.
    pub domain: String,
    /// Negotiated protocol: `"http/1.1"`, `"h2"`, or `"h3"`.
    pub protocol: String,
    /// Hosting CDN provider name per LocEdge classification; `None` for
    /// origin-served resources.
    pub provider: Option<String>,
    /// Response headers (the LocEdge classifier's input).
    pub response_headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body_bytes: u64,
    /// Identifier of the connection that served the entry (Chrome's
    /// `connection` HAR field; unique per visit).
    pub connection: u64,
    /// Request start relative to navigation start, milliseconds.
    pub started_ms: f64,
    /// Phase timings.
    pub timing: EntryTiming,
    /// Whether the TLS/QUIC session was resumed with a ticket.
    pub resumed: bool,
    /// Whether the request left as 0-RTT early data.
    pub early_data: bool,
}

impl HarEntry {
    /// The paper's reused-connection rule: `connect == 0`.
    pub fn is_reused_connection(&self) -> bool {
        self.timing.connect_ms == 0.0
    }

    /// When the entry finished, relative to navigation start.
    pub fn finished_ms(&self) -> f64 {
        self.started_ms + self.timing.total_ms()
    }
}

/// One page visit: the HAR "page" plus its entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HarPage {
    /// Site index within the corpus.
    pub site: usize,
    /// Vantage the visit ran from.
    pub vantage: String,
    /// Browser protocol mode for this visit: `"h2"` (H3 disabled) or
    /// `"h3"` (H3 enabled).
    pub protocol_mode: String,
    /// Page load time: navigation start → `onLoad`, milliseconds.
    pub plt_ms: f64,
    /// All entries, in request-start order.
    pub entries: Vec<HarEntry>,
}

impl HarPage {
    /// Number of entries whose connection was reused (Fig. 7a's
    /// statistic; the paper counts entries with zero connect time).
    pub fn reused_connection_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.is_reused_connection())
            .count()
    }

    /// Number of distinct connections that resumed a prior session
    /// (Fig. 8b's statistic).
    pub fn resumed_connection_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.resumed)
            .map(|e| e.connection)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// Entries that went over the given protocol.
    pub fn entries_with_protocol<'a>(
        &'a self,
        protocol: &'a str,
    ) -> impl Iterator<Item = &'a HarEntry> + 'a {
        self.entries.iter().filter(move |e| e.protocol == protocol)
    }

    /// The latest entry finish time — must equal `plt_ms` up to rounding
    /// when the browser defines onLoad as all-resources-complete.
    pub fn last_finish_ms(&self) -> f64 {
        self.entries
            .iter()
            .map(HarEntry::finished_ms)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, connect: f64, resumed: bool) -> HarEntry {
        HarEntry {
            id,
            url: format!("https://cdn.example.com/r{id}"),
            domain: "cdn.example.com".into(),
            protocol: "h3".into(),
            provider: Some("Cloudflare".into()),
            response_headers: vec![("server".into(), "cloudflare".into())],
            body_bytes: 1000,
            connection: id,
            started_ms: 10.0,
            timing: EntryTiming {
                blocked_ms: 1.0,
                dns_ms: 0.0,
                connect_ms: connect,
                send_ms: 0.5,
                wait_ms: 8.0,
                receive_ms: 3.0,
            },
            resumed,
            early_data: false,
        }
    }

    #[test]
    fn timing_total_sums_phases() {
        let e = entry(1, 12.0, false);
        assert!((e.timing.total_ms() - 24.5).abs() < 1e-9);
        assert!((e.finished_ms() - 34.5).abs() < 1e-9);
    }

    #[test]
    fn reused_connection_rule_is_connect_zero() {
        assert!(entry(1, 0.0, false).is_reused_connection());
        assert!(!entry(2, 0.1, false).is_reused_connection());
    }

    #[test]
    fn page_counters() {
        let page = HarPage {
            site: 3,
            vantage: "Utah".into(),
            protocol_mode: "h3".into(),
            plt_ms: 40.0,
            entries: vec![
                entry(1, 10.0, true),
                entry(2, 0.0, false),
                entry(3, 0.0, true),
            ],
        };
        assert_eq!(page.reused_connection_count(), 2);
        assert_eq!(page.resumed_connection_count(), 2); // two distinct conns
        assert_eq!(page.entries_with_protocol("h3").count(), 3);
        assert_eq!(page.entries_with_protocol("h2").count(), 0);
        assert!(page.last_finish_ms() > 30.0);
    }

    #[test]
    fn serde_round_trip() {
        let page = HarPage {
            site: 0,
            vantage: "Clemson".into(),
            protocol_mode: "h2".into(),
            plt_ms: 123.4,
            entries: vec![entry(9, 5.0, false)],
        };
        let json = serde_json::to_string(&page).expect("serialize");
        let back: HarPage = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].id, 9);
        assert!((back.plt_ms - 123.4).abs() < 1e-9);
    }
}
