//! The paper's `X_reduction = X_H2 − X_H3` metrics (§III-C).

use serde::{Deserialize, Serialize};

use crate::entry::HarPage;

/// Per-entry reductions for one resource fetched under both protocols.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntryReduction {
    /// Request id.
    pub id: u64,
    /// `connect_H2 − connect_H3`, milliseconds.
    pub connect_ms: f64,
    /// `wait_H2 − wait_H3`, milliseconds.
    pub wait_ms: f64,
    /// `receive_H2 − receive_H3`, milliseconds.
    pub receive_ms: f64,
    /// Whether the H3-mode visit actually fetched this resource over H3
    /// (false = the resource fell back to H2/H1 in both runs).
    pub h3_served: bool,
}

/// A paired H2/H3 measurement of one page from one vantage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageComparison {
    /// Site index.
    pub site: usize,
    /// Vantage name.
    pub vantage: String,
    /// PLT reduction, milliseconds (positive ⇒ H3 faster).
    pub plt_reduction_ms: f64,
    /// Reused connections in the H2 visit.
    pub reused_h2: usize,
    /// Reused connections in the H3 visit.
    pub reused_h3: usize,
    /// Resumed connections in the H3 visit (consecutive-visit runs).
    pub resumed_h3: usize,
    /// H3-enabled CDN resource count of the page (Fig. 6a grouping key).
    pub h3_enabled_cdn: usize,
    /// Number of CDN resources on the page.
    pub cdn_resources: usize,
    /// Number of distinct providers used by the page.
    pub providers_used: usize,
    /// Per-entry reductions.
    pub entries: Vec<EntryReduction>,
}

impl PageComparison {
    /// The reused-connection difference (`H2 − H3`) of §VI-C.
    pub fn reused_difference(&self) -> i64 {
        self.reused_h2 as i64 - self.reused_h3 as i64
    }
}

/// PLT reduction between a paired H2 visit and H3 visit of the same page.
///
/// # Panics
///
/// Panics (debug) when the pages are not the same site.
pub fn plt_reduction_ms(h2: &HarPage, h3: &HarPage) -> f64 {
    debug_assert_eq!(h2.site, h3.site, "reduction requires paired visits");
    h2.plt_ms - h3.plt_ms
}

/// Entry-level reductions, paired by request id. Entries present in only
/// one visit (there are none in simulation, but HAR files from the field
/// have them) are skipped.
pub fn entry_reductions(h2: &HarPage, h3: &HarPage) -> Vec<EntryReduction> {
    let mut out = Vec::with_capacity(h2.entries.len());
    let by_id: std::collections::HashMap<u64, &crate::entry::HarEntry> =
        h3.entries.iter().map(|e| (e.id, e)).collect();
    for e2 in &h2.entries {
        let Some(e3) = by_id.get(&e2.id) else {
            continue;
        };
        out.push(EntryReduction {
            id: e2.id,
            connect_ms: e2.timing.connect_ms - e3.timing.connect_ms,
            wait_ms: e2.timing.wait_ms - e3.timing.wait_ms,
            receive_ms: e2.timing.receive_ms - e3.timing.receive_ms,
            h3_served: e3.protocol == "h3",
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{EntryTiming, HarEntry};

    fn entry(id: u64, connect: f64, wait: f64, receive: f64) -> HarEntry {
        HarEntry {
            id,
            url: String::new(),
            domain: String::new(),
            protocol: "h2".into(),
            provider: None,
            response_headers: vec![],
            body_bytes: 0,
            connection: 1,
            started_ms: 0.0,
            timing: EntryTiming {
                connect_ms: connect,
                wait_ms: wait,
                receive_ms: receive,
                ..EntryTiming::default()
            },
            resumed: false,
            early_data: false,
        }
    }

    fn page(site: usize, plt: f64, entries: Vec<HarEntry>) -> HarPage {
        HarPage {
            site,
            vantage: "Utah".into(),
            protocol_mode: "h2".into(),
            plt_ms: plt,
            entries,
        }
    }

    #[test]
    fn plt_reduction_sign_convention() {
        let h2 = page(1, 500.0, vec![]);
        let h3 = page(1, 440.0, vec![]);
        // Positive ⇒ H3 faster, as in the paper.
        assert!((plt_reduction_ms(&h2, &h3) - 60.0).abs() < 1e-9);
        assert!((plt_reduction_ms(&h3, &h2) + 60.0).abs() < 1e-9);
    }

    #[test]
    fn entry_reductions_pair_by_id() {
        let h2 = page(
            1,
            0.0,
            vec![entry(1, 30.0, 10.0, 5.0), entry(2, 20.0, 8.0, 4.0)],
        );
        let h3 = page(
            1,
            0.0,
            vec![entry(2, 10.0, 9.0, 4.0), entry(1, 10.0, 12.0, 5.0)],
        );
        let reds = entry_reductions(&h2, &h3);
        assert_eq!(reds.len(), 2);
        let r1 = reds.iter().find(|r| r.id == 1).unwrap();
        assert!((r1.connect_ms - 20.0).abs() < 1e-9);
        assert!((r1.wait_ms + 2.0).abs() < 1e-9);
        assert!(r1.receive_ms.abs() < 1e-9);
    }

    #[test]
    fn unmatched_entries_are_skipped() {
        let h2 = page(
            1,
            0.0,
            vec![entry(1, 1.0, 1.0, 1.0), entry(9, 2.0, 2.0, 2.0)],
        );
        let h3 = page(1, 0.0, vec![entry(1, 1.0, 1.0, 1.0)]);
        assert_eq!(entry_reductions(&h2, &h3).len(), 1);
    }

    #[test]
    fn page_comparison_serde_round_trip() {
        let cmp = PageComparison {
            site: 3,
            vantage: "Wisconsin".into(),
            plt_reduction_ms: 42.5,
            reused_h2: 10,
            reused_h3: 8,
            resumed_h3: 4,
            h3_enabled_cdn: 20,
            cdn_resources: 60,
            providers_used: 4,
            entries: vec![EntryReduction {
                id: 1,
                connect_ms: 5.0,
                wait_ms: -1.0,
                receive_ms: 0.0,
                h3_served: true,
            }],
        };
        let json = serde_json::to_string(&cmp).expect("serialises");
        let back: PageComparison = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.site, 3);
        assert_eq!(back.entries.len(), 1);
        assert!(back.entries[0].h3_served);
        assert_eq!(back.reused_difference(), 2);
    }

    #[test]
    fn reused_difference() {
        let cmp = PageComparison {
            site: 0,
            vantage: "Utah".into(),
            plt_reduction_ms: 10.0,
            reused_h2: 40,
            reused_h3: 33,
            resumed_h3: 0,
            h3_enabled_cdn: 12,
            cdn_resources: 50,
            providers_used: 3,
            entries: vec![],
        };
        assert_eq!(cmp.reused_difference(), 7);
    }
}
