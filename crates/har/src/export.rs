//! Export to the HAR 1.2 JSON format.
//!
//! The paper's pipeline consumes Chrome HAR files; this module emits the
//! same structure (`log.pages[]` / `log.entries[]` with the standard
//! `timings` object), so recorded visits can be inspected with any HAR
//! viewer or diffed against real captures. Timestamps are synthetic —
//! offsets from the crawl epoch the paper reports (2022-10-10), since
//! the simulation has no wall clock.

use serde_json::{json, Value};

use crate::entry::HarPage;

/// The synthetic crawl date used for `startedDateTime` fields (the first
/// day of the paper's measurement week).
pub(crate) const CRAWL_EPOCH_DATE: &str = "2022-10-10";

fn started_date_time(offset_ms: f64) -> String {
    // Offsets are per-visit (seconds scale), so a fixed date plus
    // H:M:S.mmm arithmetic suffices.
    let total_ms = offset_ms.max(0.0) as u64;
    let ms = total_ms % 1000;
    let s = (total_ms / 1000) % 60;
    let m = (total_ms / 60_000) % 60;
    let h = (total_ms / 3_600_000) % 24;
    format!("{CRAWL_EPOCH_DATE}T{h:02}:{m:02}:{s:02}.{ms:03}Z")
}

/// Serialises visits into one HAR 1.2 document.
///
/// Pages are laid out sequentially on the synthetic clock, one second of
/// gap between visits, exactly ordered as given.
pub fn to_har_json(pages: &[HarPage]) -> Value {
    let mut har_pages = Vec::new();
    let mut har_entries = Vec::new();
    let mut clock_ms = 0.0;
    for (i, page) in pages.iter().enumerate() {
        let page_id = format!("page_{i}");
        har_pages.push(json!({
            "startedDateTime": started_date_time(clock_ms),
            "id": page_id,
            "title": format!("site {} ({} mode, {} vantage)",
                page.site, page.protocol_mode, page.vantage),
            "pageTimings": {
                "onContentLoad": -1,
                "onLoad": page.plt_ms,
            }
        }));
        for e in &page.entries {
            let headers: Vec<Value> = e
                .response_headers
                .iter()
                .map(|(name, value)| json!({"name": name, "value": value}))
                .collect();
            har_entries.push(json!({
                "pageref": page_id,
                "startedDateTime": started_date_time(clock_ms + e.started_ms),
                "time": e.timing.total_ms(),
                "request": {
                    "method": "GET",
                    "url": e.url,
                    "httpVersion": e.protocol,
                    "headers": [],
                    "queryString": [],
                    "cookies": [],
                    "headersSize": -1,
                    "bodySize": 0,
                },
                "response": {
                    "status": 200,
                    "statusText": "OK",
                    "httpVersion": e.protocol,
                    "headers": headers,
                    "cookies": [],
                    "content": {
                        "size": e.body_bytes,
                        "mimeType": "application/octet-stream",
                    },
                    "redirectURL": "",
                    "headersSize": -1,
                    "bodySize": e.body_bytes,
                },
                "cache": {},
                "timings": {
                    "blocked": e.timing.blocked_ms,
                    "dns": e.timing.dns_ms,
                    "connect": e.timing.connect_ms,
                    "send": e.timing.send_ms,
                    "wait": e.timing.wait_ms,
                    "receive": e.timing.receive_ms,
                    "ssl": -1,
                },
                "connection": e.connection.to_string(),
                "serverIPAddress": "",
                "_provider": e.provider,
                "_resumed": e.resumed,
                "_earlyData": e.early_data,
            }));
        }
        clock_ms += page.plt_ms + 1000.0;
    }
    json!({
        "log": {
            "version": "1.2",
            "creator": { "name": "h3cdn", "version": env!("CARGO_PKG_VERSION") },
            "pages": har_pages,
            "entries": har_entries,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{EntryTiming, HarEntry};

    fn sample_page(site: usize) -> HarPage {
        HarPage {
            site,
            vantage: "Utah".into(),
            protocol_mode: "h3".into(),
            plt_ms: 500.0,
            entries: vec![HarEntry {
                id: 1,
                url: "https://cdn.example/1".into(),
                domain: "cdn.example".into(),
                protocol: "h3".into(),
                provider: Some("Cloudflare".into()),
                response_headers: vec![("server".into(), "cloudflare".into())],
                body_bytes: 1234,
                connection: 7,
                started_ms: 10.0,
                timing: EntryTiming {
                    blocked_ms: 0.0,
                    dns_ms: 5.0,
                    connect_ms: 20.0,
                    send_ms: 0.1,
                    wait_ms: 8.0,
                    receive_ms: 3.0,
                },
                resumed: true,
                early_data: false,
            }],
        }
    }

    #[test]
    fn document_has_har_1_2_shape() {
        let doc = to_har_json(&[sample_page(0), sample_page(1)]);
        assert_eq!(doc["log"]["version"], "1.2");
        assert_eq!(doc["log"]["pages"].as_array().unwrap().len(), 2);
        let entries = doc["log"]["entries"].as_array().unwrap();
        assert_eq!(entries.len(), 2);
        let e = &entries[0];
        assert_eq!(e["pageref"], "page_0");
        assert_eq!(e["request"]["httpVersion"], "h3");
        assert_eq!(e["response"]["content"]["size"], 1234);
        assert_eq!(e["timings"]["dns"], 5.0);
        assert_eq!(e["connection"], "7");
        assert_eq!(e["_resumed"], true);
        // Second page starts after the first page's PLT plus the gap.
        let t0 = doc["log"]["pages"][0]["startedDateTime"].as_str().unwrap();
        let t1 = doc["log"]["pages"][1]["startedDateTime"].as_str().unwrap();
        assert!(t0 < t1, "pages laid out sequentially: {t0} vs {t1}");
        assert!(t0.starts_with(CRAWL_EPOCH_DATE));
    }

    #[test]
    fn timestamps_format_correctly() {
        assert_eq!(started_date_time(0.0), "2022-10-10T00:00:00.000Z");
        assert_eq!(started_date_time(61_500.0), "2022-10-10T00:01:01.500Z");
        assert_eq!(started_date_time(3_600_000.0), "2022-10-10T01:00:00.000Z");
    }

    #[test]
    fn round_trips_through_serde_json_string() {
        let doc = to_har_json(&[sample_page(0)]);
        let s = serde_json::to_string(&doc).unwrap();
        let back: serde_json::Value = serde_json::from_str(&s).unwrap();
        assert_eq!(back["log"]["entries"][0]["_provider"], "Cloudflare");
    }
}
