//! HAR-compatible measurement records and the paper's reduction metrics.
//!
//! The study's entire analysis pipeline consumes Chrome HAR files: per-
//! entry timing phases (blocked/dns/connect/send/wait/receive), page-level
//! `onLoad`, and the derived `X_reduction = X_H2 − X_H3` metrics of
//! §III-C. This crate is that data model. `h3cdn-browser` emits it;
//! `h3cdn-analysis` and the experiment binaries consume it.
//!
//! Conventions mirror the HAR 1.2 spec where it matters:
//! * all timings are fractional milliseconds;
//! * `connect` covers transport + TLS handshake (`ssl` is folded in);
//! * a *reused connection* is an entry whose `connect` is zero — exactly
//!   the paper's §VI-C detection rule ("if the connection time is 0,
//!   then it is a reused connection").

pub mod entry;
pub mod export;
pub mod reduction;

pub use entry::{EntryTiming, HarEntry, HarPage};
pub use export::to_har_json;
pub use reduction::{entry_reductions, plt_reduction_ms, EntryReduction, PageComparison};

// The deterministic parallel runner in `h3cdn` returns HARs and
// comparisons from worker threads; keep them `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<HarEntry>();
    assert_send_sync::<HarPage>();
    assert_send_sync::<PageComparison>();
};
