//! Atomic, verifiable result persistence — the single sanctioned I/O
//! module of the measurement stack.
//!
//! Long campaigns die for operational reasons (a panic in one of 325
//! visits, an OOM kill, a ctrl-C) and a half-written artifact is worse
//! than none: it silently corrupts downstream analysis. This module
//! guarantees that every byte the workspace persists is either fully
//! there or not there at all:
//!
//! * [`atomic_write`] — write-temp-fsync-rename (plus a directory
//!   fsync), the only sanctioned way to put result bytes on disk. The
//!   `raw-result-write` rule of `h3cdn-lint` denies direct
//!   `std::fs::write` / `File::create` of artifacts everywhere else.
//! * [`RunDir`] — the per-run checkpoint directory
//!   (`results/.runs/<run-id>/`): a `manifest.json` carrying the run's
//!   configuration [`Fingerprint`], one content-hashed journal file per
//!   completed job, and the `quarantine.json` of jobs that exhausted
//!   their retries.
//! * [`Fingerprint`] — the resume gate. A resumed run only reuses
//!   journal entries when seed, scenario, workspace git hash and the
//!   semantic CLI arguments all match; anything else wipes the journal
//!   and re-executes from scratch, so results from different
//!   configurations can never silently mix. Scheduling-only knobs
//!   (`--jobs`, `--progress`) are deliberately *not* part of the
//!   fingerprint: the runner's key-ordered merge makes results
//!   worker-count independent, so a resume at a different `--jobs` is
//!   still bit-identical.
//!
//! Journal entry format (one file per job,
//! `jobs/<section>/<seq>.job`): a single header line
//! `h3cdn-job v1 <fnv1a64-hex>` followed by the serialized job result.
//! The hash is verified on load; a torn or truncated entry (the crash
//! window before the rename) simply fails verification and the job
//! re-executes.

pub mod shard;

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Manifest format version; bumped on incompatible journal changes.
pub const MANIFEST_VERSION: u32 = 1;

/// FNV-1a 64-bit content hash (dependency-free, stable across
/// platforms) — the integrity check on journal entries and the
/// section/config hashing primitive.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, `fsync`, rename over the target, directory `fsync`.
/// Readers never observe a partial file; a crash at any point leaves
/// either the old content or the new one.
///
/// # Errors
/// Propagates filesystem errors (unwritable directory, full disk, ...).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{}: no parent directory", path.display()),
            )
        })?;
    fs::create_dir_all(dir)?;
    let name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{}: no UTF-8 file name", path.display()),
        )
    })?;
    // Unique per process: concurrent workers journal *distinct* paths,
    // and a stale temp file from a killed run is simply overwritten.
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself. Directory fsync is best-effort: some
    // filesystems refuse to open directories for syncing, which must
    // not fail the write (the data fsync above already happened).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// The configuration identity of a run — the resume gate recorded in
/// the manifest. Two runs may share journal entries **iff** their
/// fingerprints are equal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Corpus/run seed.
    pub seed: u64,
    /// Scenario-set description (experiment name, corpus scale,
    /// vantage set, scenario list, ...).
    pub scenario: String,
    /// Workspace git commit hash (`unknown` outside a git checkout).
    pub git_hash: String,
    /// Semantic CLI arguments — everything that changes *results*.
    /// Scheduling-only flags (`--jobs`, `--progress`, `--resume`,
    /// `--run-id`, `--results-dir`) are excluded so a resume at a
    /// different worker count reuses the journal.
    pub args: Vec<String>,
}

/// `manifest.json`: the fingerprint plus provenance of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Journal format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// The run identifier (directory name under `results/.runs/`).
    pub run_id: String,
    /// The resume gate.
    pub fingerprint: Fingerprint,
    /// Full command line as invoked — provenance only, never compared.
    pub argv: Vec<String>,
}

/// The workspace's current git commit hash, resolved by walking up
/// from the current directory to the enclosing `.git` (following a
/// symbolic `HEAD` and falling back to `packed-refs`). Returns
/// `"unknown"` when no repository is found.
pub fn workspace_git_hash() -> String {
    // Provenance lookup for the run manifest; never feeds results.
    // h3cdn-lint: allow(env-read)
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        let git = d.join(".git");
        if git.is_dir() {
            return read_git_head(&git).unwrap_or_else(|| "unknown".to_owned());
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    "unknown".to_owned()
}

/// Resolves `HEAD` inside a `.git` directory.
fn read_git_head(git: &Path) -> Option<String> {
    let head = fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        return Some(head.to_owned());
    };
    if let Ok(direct) = fs::read_to_string(git.join(refname)) {
        return Some(direct.trim().to_owned());
    }
    // Packed refs: lines of `<hash> <refname>`.
    let packed = fs::read_to_string(git.join("packed-refs")).ok()?;
    packed.lines().find_map(|line| {
        let (hash, name) = line.split_once(' ')?;
        (name.trim() == refname).then(|| hash.to_owned())
    })
}

/// A per-run checkpoint directory (`<results>/.runs/<run-id>/`).
///
/// Layout:
///
/// ```text
/// manifest.json           version + fingerprint + argv
/// jobs/<section>/NNNNNN.job   one content-hashed entry per job
/// shards/shard-NNNNN.bin  compact binary journal (population runs)
/// quarantine.json         jobs that exhausted their retries
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDir {
    root: PathBuf,
}

impl RunDir {
    /// The run directory for `run_id` under `results_dir` (no I/O;
    /// call [`prepare`](Self::prepare) before use).
    pub fn open(results_dir: &Path, run_id: &str) -> RunDir {
        RunDir {
            root: results_dir.join(".runs").join(run_id),
        }
    }

    /// A run directory at an explicit root (tests, tooling).
    pub fn at(root: PathBuf) -> RunDir {
        RunDir { root }
    }

    /// The directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of `manifest.json`.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    /// Path of the journal entry for `(section, seq)`.
    pub fn job_path(&self, section: &str, seq: usize) -> PathBuf {
        self.root
            .join("jobs")
            .join(section)
            .join(format!("{seq:06}.job"))
    }

    /// Path of `quarantine.json`.
    pub fn quarantine_path(&self) -> PathBuf {
        self.root.join("quarantine.json")
    }

    /// Directory holding the sharded binary journal of a
    /// population-scale run (see [`shard::ShardedJournal`]).
    pub fn shards_dir(&self) -> PathBuf {
        self.root.join("shards")
    }

    /// Prepares the directory for a run described by `manifest`.
    ///
    /// With `resume` set and a stored manifest whose version and
    /// [`Fingerprint`] match, existing journal entries are kept and
    /// `true` is returned. In every other case (fresh run, missing or
    /// stale manifest, fingerprint mismatch) all journal entries and
    /// any quarantine file are removed first — a configuration change
    /// forces a full re-run rather than silently mixing results — and
    /// `false` is returned. The manifest is (re)written atomically
    /// either way.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn prepare(&self, manifest: &Manifest, resume: bool) -> io::Result<bool> {
        fs::create_dir_all(&self.root)?;
        let kept = resume
            && self.read_manifest().is_some_and(|m| {
                m.version == manifest.version && m.fingerprint == manifest.fingerprint
            });
        if !kept {
            let jobs = self.root.join("jobs");
            if jobs.is_dir() {
                fs::remove_dir_all(&jobs)?;
            }
            let shards = self.shards_dir();
            if shards.is_dir() {
                fs::remove_dir_all(&shards)?;
            }
            let quarantine = self.quarantine_path();
            if quarantine.is_file() {
                fs::remove_file(&quarantine)?;
            }
        }
        let json = to_json(manifest)?;
        atomic_write(&self.manifest_path(), json.as_bytes())?;
        Ok(kept)
    }

    /// Reads and parses `manifest.json`, if present and well-formed.
    pub fn read_manifest(&self) -> Option<Manifest> {
        let text = fs::read_to_string(self.manifest_path()).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Journals one completed job atomically: a header line carrying
    /// the FNV-1a hash of `payload`, then the payload itself.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn store_job(&self, section: &str, seq: usize, payload: &[u8]) -> io::Result<()> {
        let mut bytes = format!("h3cdn-job v1 {:016x}\n", fnv1a64(payload)).into_bytes();
        bytes.extend_from_slice(payload);
        atomic_write(&self.job_path(section, seq), &bytes)
    }

    /// Loads the journal entry for `(section, seq)` when it exists and
    /// its content hash verifies; `None` (→ re-execute) otherwise.
    pub fn load_job(&self, section: &str, seq: usize) -> Option<Vec<u8>> {
        let bytes = fs::read(self.job_path(section, seq)).ok()?;
        let newline = bytes.iter().position(|&b| b == b'\n')?;
        let header = std::str::from_utf8(bytes.get(..newline)?).ok()?;
        let hex = header.strip_prefix("h3cdn-job v1 ")?;
        let want = u64::from_str_radix(hex.trim(), 16).ok()?;
        let payload = bytes.get(newline + 1..)?;
        (fnv1a64(payload) == want).then(|| payload.to_vec())
    }

    /// Writes `quarantine.json` atomically.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_quarantine(&self, json: &str) -> io::Result<()> {
        atomic_write(&self.quarantine_path(), json.as_bytes())
    }

    /// Reads `quarantine.json` as raw text, if present.
    pub fn read_quarantine(&self) -> Option<String> {
        fs::read_to_string(self.quarantine_path()).ok()
    }
}

/// Serializes a value to pretty JSON, mapping the (practically
/// unreachable) serializer error into `io::Error`.
fn to_json<T: Serialize>(value: &T) -> io::Result<String> {
    serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        // Test scratch space only; never feeds results.
        // h3cdn-lint: allow(env-read)
        let dir = std::env::temp_dir().join(format!(
            "h3cdn-persist-{tag}-{}-{:x}",
            std::process::id(),
            fnv1a64(tag.as_bytes())
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest(seed: u64) -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            run_id: "t".to_owned(),
            fingerprint: Fingerprint {
                seed,
                scenario: "test pages=2".to_owned(),
                git_hash: "abc".to_owned(),
                args: vec!["--pages".to_owned(), "2".to_owned()],
            },
            argv: vec!["test".to_owned()],
        }
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let root = tmp_root("aw");
        let path = root.join("x/y/out.txt");
        atomic_write(&path, b"first").expect("write");
        atomic_write(&path, b"second").expect("rewrite");
        assert_eq!(fs::read(&path).expect("read"), b"second");
        let dir = path.parent().expect("parent");
        let leftovers: Vec<_> = fs::read_dir(dir)
            .expect("dir")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn journal_roundtrip_verifies_hash() {
        let run = RunDir::at(tmp_root("jr"));
        run.prepare(&manifest(7), false).expect("prepare");
        run.store_job("s", 3, b"payload bytes").expect("store");
        assert_eq!(
            run.load_job("s", 3).expect("load"),
            b"payload bytes".to_vec()
        );
        assert!(run.load_job("s", 4).is_none(), "missing seq");
        // Corrupt the entry: verification must reject it.
        let path = run.job_path("s", 3);
        let mut bytes = fs::read(&path).expect("read");
        if let Some(last) = bytes.last_mut() {
            *last ^= 0xFF;
        }
        fs::write(&path, &bytes).expect("corrupt");
        assert!(run.load_job("s", 3).is_none(), "corrupt entry rejected");
        let _ = fs::remove_dir_all(run.root());
    }

    #[test]
    fn prepare_resume_semantics() {
        let run = RunDir::at(tmp_root("pr"));
        // Fresh run: nothing kept.
        assert!(!run.prepare(&manifest(1), false).expect("fresh"));
        run.store_job("s", 0, b"a").expect("store");
        // Resume with matching fingerprint: journal kept.
        assert!(run.prepare(&manifest(1), true).expect("resume"));
        assert!(run.load_job("s", 0).is_some());
        // Resume with a *different* fingerprint: journal wiped.
        assert!(!run.prepare(&manifest(2), true).expect("stale"));
        assert!(run.load_job("s", 0).is_none(), "stale journal wiped");
        // Non-resume prepare always wipes.
        run.store_job("s", 0, b"b").expect("store");
        assert!(!run.prepare(&manifest(2), false).expect("fresh again"));
        assert!(run.load_job("s", 0).is_none());
        let _ = fs::remove_dir_all(run.root());
    }

    #[test]
    fn prepare_shard_wipe_semantics() {
        let run = RunDir::at(tmp_root("ps"));
        assert!(!run.prepare(&manifest(1), false).expect("fresh"));
        let shard = run.shards_dir().join("shard-00000.bin");
        fs::create_dir_all(run.shards_dir()).expect("mkdir");
        fs::write(&shard, b"x").expect("seed shard");
        // Matching resume keeps shards; any mismatch wipes them.
        assert!(run.prepare(&manifest(1), true).expect("resume"));
        assert!(shard.is_file(), "matching resume keeps shards");
        assert!(!run.prepare(&manifest(2), true).expect("stale"));
        assert!(!shard.exists(), "stale fingerprint wipes shards");
        let _ = fs::remove_dir_all(run.root());
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = manifest(42);
        let json = serde_json::to_string_pretty(&m).expect("serialise");
        let back: Manifest = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.fingerprint, m.fingerprint);
        assert_eq!(back.version, m.version);
        assert_eq!(back.argv, m.argv);
    }

    #[test]
    fn git_hash_resolves_in_this_repo() {
        let hash = workspace_git_hash();
        // Inside the workspace checkout this is a 40-hex commit id.
        assert!(hash == "unknown" || hash.len() >= 7, "hash: {hash}");
    }
}
