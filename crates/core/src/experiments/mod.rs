//! Regenerators for every table and figure in the paper's evaluation.
//!
//! Each submodule owns one artifact: it consumes a
//! [`MeasurementCampaign`](crate::MeasurementCampaign), runs exactly the
//! analysis the paper describes, and returns a serialisable result whose
//! `Display` prints the same rows/series the paper reports. The
//! `h3cdn-experiments` binaries are thin wrappers over these functions;
//! EXPERIMENTS.md records paper-vs-measured for each.

pub mod fault_matrix;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
