//! Sharded append-only binary journal for population-scale campaigns.
//!
//! The per-job JSON journal ([`super::RunDir::store_job`]) costs one
//! file + one `fsync`-rename per job — fine at 325 pages, untenable at
//! 10⁶. This module replaces it for population runs with append-only
//! shard files holding compact binary records:
//!
//! ```text
//! shards/shard-00000.bin
//! shards/shard-00001.bin        (rotated every `records_per_shard`)
//! ```
//!
//! Record wire format (all integers little-endian):
//!
//! ```text
//! [seq: u64] [len: u32] [fnv1a64(payload): u64] [payload: len bytes]
//! ```
//!
//! Crash safety is *prefix* safety: records are appended and flushed in
//! order, and the loader scans each shard front to back, stopping at
//! the first torn or hash-mismatched record. A SIGKILL mid-append
//! therefore loses at most the unflushed tail of the newest shard;
//! every surviving record verifies, and lost jobs simply re-execute
//! (deterministically, so resume stays bit-identical). A writer opened
//! on an existing directory never reopens old shards — it starts a
//! fresh shard after the highest existing index, so partially-written
//! old tails are never appended to.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use super::fnv1a64;

/// Default shard rotation threshold (records per shard file).
pub(crate) const DEFAULT_RECORDS_PER_SHARD: u64 = 4096;

/// Byte length of a record header: seq (8) + len (4) + hash (8).
const HEADER_LEN: usize = 20;

/// Sanity cap on a single record's payload; a length field above this
/// is treated as corruption rather than an allocation request.
const MAX_PAYLOAD_LEN: u32 = 64 * 1024 * 1024;

/// Append-only writer over a shard directory. Thread-safe: workers
/// append concurrently through an internal mutex; each append is
/// written and flushed as one contiguous record.
#[derive(Debug)]
pub struct ShardedJournal {
    dir: PathBuf,
    records_per_shard: u64,
    state: Mutex<WriterState>,
}

#[derive(Debug)]
struct WriterState {
    /// Open shard file; `None` until the first append (so read-only
    /// users never create empty shards).
    file: Option<BufWriter<File>>,
    /// Index of the shard currently being written.
    shard_idx: u64,
    /// Records appended to the current shard so far.
    records_in_shard: u64,
}

impl ShardedJournal {
    /// Opens a journal writer over `dir` (created if missing) with the
    /// default rotation threshold. Appends go to a fresh shard after
    /// the highest existing index; existing shards are never modified.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn open(dir: &Path) -> io::Result<ShardedJournal> {
        Self::with_records_per_shard(dir, DEFAULT_RECORDS_PER_SHARD)
    }

    /// As [`open`](Self::open) with an explicit rotation threshold.
    ///
    /// # Errors
    /// Propagates filesystem errors; rejects a zero threshold.
    pub fn with_records_per_shard(
        dir: &Path,
        records_per_shard: u64,
    ) -> io::Result<ShardedJournal> {
        if records_per_shard == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "records_per_shard must be at least 1",
            ));
        }
        fs::create_dir_all(dir)?;
        let next_idx = max_shard_index(dir)?.map_or(0, |i| i + 1);
        Ok(ShardedJournal {
            dir: dir.to_path_buf(),
            records_per_shard,
            state: Mutex::new(WriterState {
                file: None,
                shard_idx: next_idx,
                records_in_shard: 0,
            }),
        })
    }

    /// The shard directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one `(seq, payload)` record and flushes it to the OS.
    /// The flush makes the record survive a process kill; the `fsync`
    /// happens on rotation and in [`finish`](Self::finish).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    ///
    /// # Panics
    /// Panics if the internal mutex is poisoned (a prior append
    /// panicked) or the payload exceeds the 64 MiB record cap.
    pub fn append(&self, seq: u64, payload: &[u8]) -> io::Result<()> {
        assert!(
            payload.len() <= MAX_PAYLOAD_LEN as usize,
            "payload of {} bytes exceeds the record cap",
            payload.len()
        );
        let mut st = self.state.lock().expect("journal mutex");
        if st.file.is_none() || st.records_in_shard >= self.records_per_shard {
            self.rotate(&mut st)?;
        }
        let mut record = Vec::with_capacity(HEADER_LEN + payload.len());
        record.extend_from_slice(&seq.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        record.extend_from_slice(payload);
        let file = st.file.as_mut().expect("rotate opened a shard");
        file.write_all(&record)?;
        // Push the record into the kernel so a SIGKILL cannot lose it;
        // only a machine crash can, and then the prefix scan recovers.
        file.flush()?;
        st.records_in_shard += 1;
        Ok(())
    }

    /// Closes the current shard with a full `fsync`. Idempotent; the
    /// next append after `finish` starts a new shard.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    ///
    /// # Panics
    /// Panics if the internal mutex is poisoned.
    pub fn finish(&self) -> io::Result<()> {
        let mut st = self.state.lock().expect("journal mutex");
        if let Some(mut file) = st.file.take() {
            file.flush()?;
            file.get_ref().sync_all()?;
            st.shard_idx += 1;
            st.records_in_shard = 0;
        }
        Ok(())
    }

    /// Seals the current shard (fsync + close) and opens the next one.
    fn rotate(&self, st: &mut WriterState) -> io::Result<()> {
        if let Some(mut old) = st.file.take() {
            old.flush()?;
            old.get_ref().sync_all()?;
            st.shard_idx += 1;
        }
        let path = shard_path(&self.dir, st.shard_idx);
        // Appends only ever target a brand-new shard file (the writer
        // starts past the highest existing index), so plain creation
        // is safe here. h3cdn-lint: allow(raw-result-write)
        let file = File::create(&path)?;
        st.file = Some(BufWriter::new(file));
        st.records_in_shard = 0;
        Ok(())
    }

    /// Loads every verifiable record under `dir` into a `seq → payload`
    /// map. Shards are scanned in index order; within a shard the scan
    /// stops at the first torn or corrupt record (prefix recovery).
    /// Later records for the same `seq` win, so a re-executed job
    /// journaled into a newer shard supersedes an older entry.
    ///
    /// # Errors
    /// Propagates filesystem errors (a missing directory is an empty
    /// journal, not an error).
    pub fn load(dir: &Path) -> io::Result<BTreeMap<u64, Vec<u8>>> {
        let mut out = BTreeMap::new();
        let Ok(entries) = fs::read_dir(dir) else {
            return Ok(out);
        };
        let mut shards: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| is_shard_name(p))
            .collect();
        shards.sort();
        for path in shards {
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            scan_shard(&bytes, &mut out);
        }
        Ok(out)
    }
}

/// Parses verifiable records off the front of one shard's bytes,
/// inserting them into `out`; stops at the first torn or corrupt
/// record.
fn scan_shard(bytes: &[u8], out: &mut BTreeMap<u64, Vec<u8>>) {
    let mut off = 0usize;
    while bytes.len() - off >= HEADER_LEN {
        let Some(header) = bytes.get(off..off + HEADER_LEN) else {
            return;
        };
        let seq = u64::from_le_bytes(header[0..8].try_into().expect("8 header bytes"));
        let len = u32::from_le_bytes(header[8..12].try_into().expect("4 header bytes"));
        let want = u64::from_le_bytes(header[12..20].try_into().expect("8 header bytes"));
        if len > MAX_PAYLOAD_LEN {
            return; // corrupt length field
        }
        let Some(payload) = bytes.get(off + HEADER_LEN..off + HEADER_LEN + len as usize) else {
            return; // torn tail
        };
        if fnv1a64(payload) != want {
            return; // corrupt payload: discard the rest of the shard
        }
        out.insert(seq, payload.to_vec());
        off += HEADER_LEN + len as usize;
    }
}

/// `shard-NNNNN.bin` path for index `idx` under `dir`.
fn shard_path(dir: &Path, idx: u64) -> PathBuf {
    dir.join(format!("shard-{idx:05}.bin"))
}

/// Whether a path looks like a shard file.
fn is_shard_name(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".bin"))
}

/// The highest shard index present under `dir`, if any.
fn max_shard_index(dir: &Path) -> io::Result<Option<u64>> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(None);
    };
    let mut max = None;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if !is_shard_name(&path) {
            continue;
        }
        let idx = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("shard-"))
            .and_then(|n| n.strip_suffix(".bin"))
            .and_then(|n| n.parse::<u64>().ok());
        if let Some(i) = idx {
            max = Some(max.map_or(i, |m: u64| m.max(i)));
        }
    }
    Ok(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        // Test scratch space only; never feeds results.
        // h3cdn-lint: allow(env-read)
        let dir = std::env::temp_dir().join(format!(
            "h3cdn-shard-{tag}-{}-{:x}",
            std::process::id(),
            fnv1a64(tag.as_bytes())
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_across_rotation() {
        let dir = tmp_dir("rt");
        let journal = ShardedJournal::with_records_per_shard(&dir, 10).expect("open");
        for seq in 0..35u64 {
            journal
                .append(seq, format!("payload-{seq}").as_bytes())
                .expect("append");
        }
        journal.finish().expect("finish");
        // 35 records at 10/shard → 4 shard files.
        let shards = fs::read_dir(&dir).expect("dir").count();
        assert_eq!(shards, 4);
        let loaded = ShardedJournal::load(&dir).expect("load");
        assert_eq!(loaded.len(), 35);
        for seq in 0..35u64 {
            assert_eq!(loaded[&seq], format!("payload-{seq}").into_bytes());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_appends_into_fresh_shard() {
        let dir = tmp_dir("ro");
        {
            let j = ShardedJournal::with_records_per_shard(&dir, 100).expect("open");
            j.append(0, b"first").expect("append");
            // Dropped without finish — simulates a killed process.
        }
        let j = ShardedJournal::with_records_per_shard(&dir, 100).expect("reopen");
        j.append(1, b"second").expect("append");
        j.finish().expect("finish");
        // Two shards: the writer never reopened the orphaned one.
        assert!(shard_path(&dir, 0).is_file());
        assert!(shard_path(&dir, 1).is_file());
        let loaded = ShardedJournal::load(&dir).expect("load");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[&0], b"first".to_vec());
        assert_eq!(loaded[&1], b"second".to_vec());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_prefix_survives() {
        let dir = tmp_dir("torn");
        let j = ShardedJournal::with_records_per_shard(&dir, 100).expect("open");
        for seq in 0..5u64 {
            j.append(seq, &[seq as u8; 32]).expect("append");
        }
        j.finish().expect("finish");
        // Tear the shard mid-record: keep 3 full records plus half of
        // the fourth.
        let path = shard_path(&dir, 0);
        let bytes = fs::read(&path).expect("read");
        let record_len = HEADER_LEN + 32;
        fs::write(&path, &bytes[..3 * record_len + 10]).expect("tear");
        let loaded = ShardedJournal::load(&dir).expect("load");
        assert_eq!(
            loaded.keys().copied().collect::<Vec<_>>(),
            vec![0, 1, 2],
            "intact prefix survives, torn tail re-executes"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_stops_the_shard_scan() {
        let dir = tmp_dir("corrupt");
        let j = ShardedJournal::with_records_per_shard(&dir, 100).expect("open");
        for seq in 0..4u64 {
            j.append(seq, &[0xAB; 16]).expect("append");
        }
        j.finish().expect("finish");
        let path = shard_path(&dir, 0);
        let mut bytes = fs::read(&path).expect("read");
        // Flip a payload byte of record 1; records 0 survives, 1..4 are
        // dropped (no resync — determinism over salvage).
        let record_len = HEADER_LEN + 16;
        bytes[record_len + HEADER_LEN + 3] ^= 0xFF;
        fs::write(&path, &bytes).expect("corrupt");
        let loaded = ShardedJournal::load(&dir).expect("load");
        assert_eq!(loaded.keys().copied().collect::<Vec<_>>(), vec![0]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_records_win_for_same_seq() {
        let dir = tmp_dir("dup");
        {
            let j = ShardedJournal::with_records_per_shard(&dir, 100).expect("open");
            j.append(7, b"old").expect("append");
            j.finish().expect("finish");
        }
        {
            let j = ShardedJournal::with_records_per_shard(&dir, 100).expect("reopen");
            j.append(7, b"new").expect("append");
            j.finish().expect("finish");
        }
        let loaded = ShardedJournal::load(&dir).expect("load");
        assert_eq!(loaded[&7], b"new".to_vec());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_loads_empty() {
        let dir = tmp_dir("missing");
        let loaded = ShardedJournal::load(&dir).expect("load");
        assert!(loaded.is_empty());
    }

    #[test]
    fn zero_rotation_threshold_is_rejected() {
        let dir = tmp_dir("zero");
        assert!(ShardedJournal::with_records_per_shard(&dir, 0).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
