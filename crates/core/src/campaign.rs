//! The measurement campaign: corpus + visit machinery + pairing.
//!
//! All visit entry points funnel into one internal page-visit path and,
//! for anything that measures more than a single page, into the
//! deterministic parallel [`runner`](crate::runner): paired visits are
//! submitted as keyed jobs `(vantage, site, variant)` where `variant`
//! is the protocol side (0 = H2, 1 = H3), executed on a scoped worker
//! pool, and merged in key order — so every campaign API returns
//! bit-identical results for any worker count.

use h3cdn_browser::{visit_consecutively, visit_page, ProtocolMode, VisitConfig};
use h3cdn_cdn::Vantage;
use h3cdn_har::{entry_reductions, plt_reduction_ms, HarPage, PageComparison};
use h3cdn_transport::tls::TicketStore;
use h3cdn_web::{generate, Corpus, Webpage, WorkloadSpec};

use crate::runner::{run_keyed, run_keyed_values, RunnerConfig};

/// Configuration of one campaign (corpus + probing setup).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Workload specification (pages, sizes, calibration).
    pub workload: WorkloadSpec,
    /// Vantage points to probe from (the paper uses all three).
    pub vantages: Vec<Vantage>,
    /// Base visit configuration; experiments override mode/loss per run.
    pub visit: VisitConfig,
    /// Parallel execution settings for multi-visit APIs. Results are
    /// bit-identical for every worker count; this only changes speed.
    pub runner: RunnerConfig,
}

impl Default for CampaignConfig {
    /// Paper-scale: 325 pages, three vantages, runner from environment.
    fn default() -> Self {
        CampaignConfig {
            workload: WorkloadSpec::default(),
            vantages: Vantage::ALL.to_vec(),
            visit: VisitConfig::default(),
            runner: RunnerConfig::from_env(),
        }
    }
}

impl CampaignConfig {
    /// A scaled-down campaign (one vantage) for tests, examples and
    /// benches.
    pub fn small(pages: usize, seed: u64) -> Self {
        CampaignConfig {
            workload: WorkloadSpec::default().with_pages(pages).with_seed(seed),
            vantages: vec![Vantage::Utah],
            visit: VisitConfig::default(),
            runner: RunnerConfig::from_env(),
        }
    }

    /// Returns a copy using the given runner configuration.
    pub fn with_runner(mut self, runner: RunnerConfig) -> Self {
        self.runner = runner;
        self
    }
}

/// A campaign: the corpus plus everything needed to measure it.
///
/// All visit methods are pure functions of the campaign configuration —
/// identical campaigns produce identical HARs, regardless of the
/// configured worker count.
#[derive(Debug)]
pub struct MeasurementCampaign {
    config: CampaignConfig,
    corpus: Corpus,
}

impl MeasurementCampaign {
    /// Generates the corpus and readies the campaign.
    pub fn new(config: CampaignConfig) -> Self {
        let corpus = generate(&config.workload);
        MeasurementCampaign { config, corpus }
    }

    /// The generated corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The configured vantages.
    pub fn vantages(&self) -> &[Vantage] {
        &self.config.vantages
    }

    /// The runner configuration multi-visit APIs execute under.
    pub fn runner(&self) -> &RunnerConfig {
        &self.config.runner
    }

    /// The single internal visit path every public entry point funnels
    /// through: one isolated page load (fresh ticket store) under an
    /// explicit config.
    fn page_visit(&self, site: usize, cfg: &VisitConfig) -> HarPage {
        visit_page(
            &self.corpus.pages[site],
            &self.corpus.domains,
            cfg,
            TicketStore::new(),
        )
        .har
    }

    /// Visits one page once, isolated (no prior session state).
    pub fn visit(&self, site: usize, vantage: Vantage, mode: ProtocolMode) -> HarPage {
        let cfg = self
            .config
            .visit
            .clone()
            .with_mode(mode)
            .with_vantage(vantage);
        self.page_visit(site, &cfg)
    }

    /// Visits one page with an explicit visit config (loss sweeps etc.).
    pub fn visit_with(&self, site: usize, cfg: &VisitConfig) -> HarPage {
        self.page_visit(site, cfg)
    }

    /// The paper's paired measurement of one page from one vantage: an
    /// H2 visit and an H3 visit over identical paths, reduced to a
    /// [`PageComparison`].
    pub fn compare_page(&self, site: usize, vantage: Vantage) -> PageComparison {
        let base = self.config.visit.clone().with_vantage(vantage);
        self.compare_page_with(site, &base)
    }

    /// Paired measurement under an explicit base config (the mode field
    /// is overridden per side).
    pub fn compare_page_with(&self, site: usize, base: &VisitConfig) -> PageComparison {
        let h2 = self.page_visit(site, &base.clone().with_mode(ProtocolMode::H2Only));
        let h3 = self.page_visit(site, &base.clone().with_mode(ProtocolMode::H3Enabled));
        self.build_comparison(&self.corpus.pages[site], &h2, &h3)
    }

    /// Runs a batch of paired H2/H3 measurements on the configured
    /// runner and returns them keyed, in ascending key order.
    ///
    /// Each spec `(key, site, base_config)` expands into two jobs —
    /// `(key, site, 0)` for the H2 side and `(key, site, 1)` for the H3
    /// side — so the pool load-balances at visit granularity. The merge
    /// pairs the sides back up and reduces them with
    /// [`build_comparison`](Self::build_comparison). Output is
    /// bit-identical for every worker count.
    pub fn compare_batch<K>(&self, specs: Vec<(K, usize, VisitConfig)>) -> Vec<(K, PageComparison)>
    where
        K: Ord + Clone + Send,
    {
        let mut jobs = Vec::with_capacity(specs.len() * 2);
        for (key, site, base) in specs {
            for (variant, mode) in [
                (0u32, ProtocolMode::H2Only),
                (1u32, ProtocolMode::H3Enabled),
            ] {
                let cfg = base.clone().with_mode(mode);
                let key = key.clone();
                jobs.push(((key, site, variant), move || self.page_visit(site, &cfg)));
            }
        }
        let sides = run_keyed(&self.config.runner, jobs);
        sides
            .chunks_exact(2)
            .map(|pair| {
                let ((key, site, _), h2) = &pair[0];
                let (_, h3) = &pair[1];
                (
                    key.clone(),
                    self.build_comparison(&self.corpus.pages[*site], h2, h3),
                )
            })
            .collect()
    }

    /// Paired measurements of every page from one vantage, in corpus
    /// order (parallel, order-stable).
    pub fn compare_vantage(&self, vantage: Vantage) -> Vec<PageComparison> {
        let base = self.config.visit.clone().with_vantage(vantage);
        let specs = (0..self.corpus.pages.len())
            .map(|site| (site as u32, site, base.clone()))
            .collect();
        self.compare_batch(specs)
            .into_iter()
            .map(|(_, cmp)| cmp)
            .collect()
    }

    /// Paired measurements of every page from every configured vantage
    /// (the full Fig. 6/7 dataset), vantage-major in configuration
    /// order, sites ascending — identical to the serial double loop.
    pub fn compare_all(&self) -> Vec<PageComparison> {
        let mut specs = Vec::new();
        for (vi, &v) in self.config.vantages.iter().enumerate() {
            let base = self.config.visit.clone().with_vantage(v);
            for site in 0..self.corpus.pages.len() {
                specs.push(((vi as u32, site as u32), site, base.clone()));
            }
        }
        self.compare_batch(specs)
            .into_iter()
            .map(|(_, cmp)| cmp)
            .collect()
    }

    /// One consecutive pass (session state carried across pages) under
    /// an explicit mode.
    fn consecutive_visit(&self, vantage: Vantage, mode: ProtocolMode) -> Vec<HarPage> {
        let pages: Vec<&Webpage> = self.corpus.pages.iter().collect();
        let (hars, _) = visit_consecutively(
            &pages,
            &self.corpus.domains,
            &self
                .config
                .visit
                .clone()
                .with_vantage(vantage)
                .with_mode(mode),
            TicketStore::new(),
        );
        hars
    }

    /// Consecutive visits (§VI-D): pages in corpus order, session state
    /// carried across pages, one pass per protocol mode. The two passes
    /// run as parallel jobs. Returns `(h2_pages, h3_pages)`
    /// index-aligned with the corpus.
    pub fn consecutive_pass(&self, vantage: Vantage) -> (Vec<HarPage>, Vec<HarPage>) {
        let jobs = [
            (0u32, ProtocolMode::H2Only),
            (1u32, ProtocolMode::H3Enabled),
        ]
        .into_iter()
        .map(|(variant, mode)| {
            ((0u32, 0u32, variant), move || {
                self.consecutive_visit(vantage, mode)
            })
        })
        .collect();
        let mut out = run_keyed_values(&self.config.runner, jobs);
        let h3 = out.pop().expect("H3 pass present");
        let h2 = out.pop().expect("H2 pass present");
        (h2, h3)
    }

    /// [`consecutive_pass`](Self::consecutive_pass) from every
    /// configured vantage, all passes pooled as parallel jobs. Returns
    /// `(vantage, h2_pages, h3_pages)` in configuration order.
    pub fn consecutive_all(&self) -> Vec<(Vantage, Vec<HarPage>, Vec<HarPage>)> {
        let mut jobs = Vec::with_capacity(self.config.vantages.len() * 2);
        for (vi, &v) in self.config.vantages.iter().enumerate() {
            for (variant, mode) in [
                (0u32, ProtocolMode::H2Only),
                (1u32, ProtocolMode::H3Enabled),
            ] {
                jobs.push(((vi as u32, 0u32, variant), move || {
                    self.consecutive_visit(v, mode)
                }));
            }
        }
        let out = run_keyed_values(&self.config.runner, jobs);
        let mut passes = out.into_iter();
        self.config
            .vantages
            .iter()
            .map(|&v| {
                let h2 = passes.next().expect("H2 pass present");
                let h3 = passes.next().expect("H3 pass present");
                (v, h2, h3)
            })
            .collect()
    }

    /// Builds the [`PageComparison`] for a paired pair of HARs.
    pub fn build_comparison(&self, page: &Webpage, h2: &HarPage, h3: &HarPage) -> PageComparison {
        PageComparison {
            site: page.site,
            vantage: h2.vantage.clone(),
            plt_reduction_ms: plt_reduction_ms(h2, h3),
            reused_h2: h2.reused_connection_count(),
            reused_h3: h3.reused_connection_count(),
            resumed_h3: h3.resumed_connection_count(),
            h3_enabled_cdn: page.h3_enabled_cdn_count(),
            cdn_resources: page.cdn_resources().count(),
            providers_used: page.providers_used().len(),
            entries: entry_reductions(h2, h3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign() -> MeasurementCampaign {
        MeasurementCampaign::new(CampaignConfig::small(4, 11))
    }

    #[test]
    fn comparison_has_full_pairing() {
        let c = campaign();
        let cmp = c.compare_page(0, Vantage::Utah);
        assert_eq!(cmp.entries.len(), c.corpus().pages[0].request_count());
        assert_eq!(cmp.site, 0);
        assert_eq!(
            cmp.cdn_resources,
            c.corpus().pages[0].cdn_resources().count()
        );
    }

    #[test]
    fn compare_all_covers_pages_times_vantages() {
        let mut cfg = CampaignConfig::small(3, 5);
        cfg.vantages = vec![Vantage::Utah, Vantage::Clemson];
        let c = MeasurementCampaign::new(cfg);
        assert_eq!(c.compare_all().len(), 6);
    }

    #[test]
    fn visits_are_reproducible() {
        let c = campaign();
        let a = c.visit(1, Vantage::Utah, ProtocolMode::H3Enabled);
        let b = c.visit(1, Vantage::Utah, ProtocolMode::H3Enabled);
        assert_eq!(a.plt_ms, b.plt_ms);
    }

    #[test]
    fn consecutive_pass_resumes_later_pages() {
        let c = campaign();
        let (_, h3) = c.consecutive_pass(Vantage::Utah);
        let resumed: usize = h3.iter().map(HarPage::resumed_connection_count).sum();
        assert!(resumed > 0);
    }

    #[test]
    fn compare_vantage_matches_per_page_calls() {
        let c = campaign();
        let batch = c.compare_vantage(Vantage::Utah);
        assert_eq!(batch.len(), 4);
        for (site, cmp) in batch.iter().enumerate() {
            let single = c.compare_page(site, Vantage::Utah);
            assert_eq!(cmp.plt_reduction_ms, single.plt_reduction_ms, "site {site}");
            assert_eq!(cmp.site, single.site);
        }
    }

    #[test]
    fn compare_all_is_worker_count_invariant() {
        let mut cfg = CampaignConfig::small(3, 5);
        cfg.vantages = vec![Vantage::Utah, Vantage::Wisconsin];
        let serial = MeasurementCampaign::new(cfg.clone().with_runner(RunnerConfig::serial()));
        let parallel =
            MeasurementCampaign::new(cfg.with_runner(RunnerConfig::default().with_jobs(8)));
        let a = serial.compare_all();
        let b = parallel.compare_all();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.site, y.site);
            assert_eq!(x.vantage, y.vantage);
            assert_eq!(x.plt_reduction_ms.to_bits(), y.plt_reduction_ms.to_bits());
            assert_eq!(x.entries.len(), y.entries.len());
        }
    }

    #[test]
    fn consecutive_all_matches_single_vantage_pass() {
        let c = campaign();
        let all = c.consecutive_all();
        assert_eq!(all.len(), 1);
        let (v, h2, h3) = &all[0];
        assert_eq!(*v, Vantage::Utah);
        let (sh2, sh3) = c.consecutive_pass(Vantage::Utah);
        assert_eq!(h2.len(), sh2.len());
        assert_eq!(h3.len(), sh3.len());
        for (a, b) in h3.iter().zip(&sh3) {
            assert_eq!(a.plt_ms.to_bits(), b.plt_ms.to_bits());
        }
    }
}
