//! The measurement campaign: corpus + visit machinery + pairing.
//!
//! All visit entry points funnel into one internal page-visit path and,
//! for anything that measures more than a single page, into the
//! deterministic parallel [`runner`](crate::runner): paired visits are
//! submitted as keyed jobs `(vantage, site, variant)` where `variant`
//! is the protocol side (0 = H2, 1 = H3), executed on a scoped worker
//! pool, and merged in key order — so every campaign API returns
//! bit-identical results for any worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use h3cdn_browser::{
    try_visit_consecutively, try_visit_page, AbortedVisit, BrokenQuicCache, ProtocolMode,
    VisitConfig,
};
use h3cdn_cdn::Vantage;
use h3cdn_har::{entry_reductions, plt_reduction_ms, HarPage, PageComparison};
use h3cdn_transport::tls::TicketStore;
use h3cdn_web::{generate, Corpus, Webpage, WorkloadSpec};

use serde::{Deserialize, Serialize};

use crate::persist::fnv1a64;
use crate::runner::durable::{
    run_keyed_durable, DurableContext, DurableReport, JobFailure, JobMeta, STALLED_PREFIX,
};
use crate::runner::{run_keyed, RunnerConfig};

/// Configuration of one campaign (corpus + probing setup).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Workload specification (pages, sizes, calibration).
    pub workload: WorkloadSpec,
    /// Vantage points to probe from (the paper uses all three).
    pub vantages: Vec<Vantage>,
    /// Base visit configuration; experiments override mode/loss per run.
    pub visit: VisitConfig,
    /// Parallel execution settings for multi-visit APIs. Results are
    /// bit-identical for every worker count; this only changes speed.
    pub runner: RunnerConfig,
    /// Crash-safe execution: panic isolation, deterministic retries,
    /// and (when the context carries a checkpoint directory)
    /// journal/resume. `None` (the default) runs on the plain
    /// deterministic pool — a panicking visit then aborts the process,
    /// exactly as before this layer existed.
    pub durable: Option<DurableContext>,
    /// Chaos hook: deliberately panic any visit of this site (set from
    /// `H3CDN_PANIC_SITE` by the experiment binaries). Exists to prove
    /// the quarantine path end-to-end; `None` in every real campaign.
    pub inject_panic_site: Option<usize>,
}

impl Default for CampaignConfig {
    /// Paper-scale: 325 pages, three vantages, runner from environment.
    fn default() -> Self {
        CampaignConfig {
            workload: WorkloadSpec::default(),
            vantages: Vantage::ALL.to_vec(),
            visit: VisitConfig::default(),
            runner: RunnerConfig::from_env(),
            durable: None,
            inject_panic_site: None,
        }
    }
}

impl CampaignConfig {
    /// A scaled-down campaign (one vantage) for tests, examples and
    /// benches.
    pub fn small(pages: usize, seed: u64) -> Self {
        CampaignConfig {
            workload: WorkloadSpec::default().with_pages(pages).with_seed(seed),
            vantages: vec![Vantage::Utah],
            visit: VisitConfig::default(),
            runner: RunnerConfig::from_env(),
            durable: None,
            inject_panic_site: None,
        }
    }

    /// Returns a copy using the given runner configuration.
    pub fn with_runner(mut self, runner: RunnerConfig) -> Self {
        self.runner = runner;
        self
    }

    /// Returns a copy with crash-safe execution configured (`None`
    /// reverts to the plain pool).
    pub fn with_durable(mut self, durable: Option<DurableContext>) -> Self {
        self.durable = durable;
        self
    }

    /// Returns a copy with the chaos hook armed for `site`.
    pub fn with_inject_panic_site(mut self, site: Option<usize>) -> Self {
        self.inject_panic_site = site;
        self
    }
}

/// A campaign: the corpus plus everything needed to measure it.
///
/// All visit methods are pure functions of the campaign configuration —
/// identical campaigns produce identical HARs, regardless of the
/// configured worker count.
#[derive(Debug)]
pub struct MeasurementCampaign {
    config: CampaignConfig,
    corpus: Corpus,
    /// Quarantined jobs accumulated across durable batches of this
    /// campaign (empty unless `config.durable` is set and jobs failed).
    quarantine: Mutex<Vec<JobFailure>>,
    /// Jobs loaded from the checkpoint journal instead of executed.
    resumed: AtomicUsize,
}

impl MeasurementCampaign {
    /// Generates the corpus and readies the campaign.
    pub fn new(config: CampaignConfig) -> Self {
        let corpus = generate(&config.workload);
        MeasurementCampaign {
            config,
            corpus,
            quarantine: Mutex::new(Vec::new()),
            resumed: AtomicUsize::new(0),
        }
    }

    /// The generated corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The configured vantages.
    pub fn vantages(&self) -> &[Vantage] {
        &self.config.vantages
    }

    /// The runner configuration multi-visit APIs execute under.
    pub fn runner(&self) -> &RunnerConfig {
        &self.config.runner
    }

    /// Quarantined jobs accumulated so far, draining the sink. Callers
    /// that run under a durable context should report these alongside
    /// their results — the campaign completed *without* them.
    pub fn take_quarantine(&self) -> Vec<JobFailure> {
        std::mem::take(
            &mut *self
                .quarantine
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Number of jobs loaded from the checkpoint journal instead of
    /// executed (0 unless resuming).
    pub fn resumed_jobs(&self) -> usize {
        self.resumed.load(Ordering::Relaxed)
    }

    /// The single internal visit path every public entry point funnels
    /// through: one isolated page load (fresh ticket store) under an
    /// explicit config.
    ///
    /// Aborted visits surface as `String`-payload panics (stall-backed
    /// ones carry [`STALLED_PREFIX`]); under a durable context the
    /// runner's `catch_unwind` shell converts them into typed
    /// [`JobFailure`]s, otherwise they abort the process exactly as the
    /// pre-durable `visit_page` panic did.
    fn page_visit(&self, site: usize, cfg: &VisitConfig) -> HarPage {
        if self.config.inject_panic_site == Some(site) {
            std::panic::panic_any(format!(
                "deliberately injected panic at site {site} (H3CDN_PANIC_SITE chaos hook)"
            ));
        }
        match try_visit_page(
            &self.corpus.pages[site],
            &self.corpus.domains,
            cfg,
            TicketStore::new(),
            BrokenQuicCache::new(),
        ) {
            Ok(outcome) => outcome.har,
            Err(aborted) => abort_to_panic(&aborted),
        }
    }

    /// Per-visit job metadata: a stable human label plus the minimal
    /// deterministic repro command line recorded on failure.
    fn visit_meta(&self, site: usize, cfg: &VisitConfig) -> JobMeta {
        let w = &self.config.workload;
        let mode = cfg.mode.label();
        let vantage = cfg.vantage.name().to_lowercase();
        let cfg_hash = fnv1a64(format!("{cfg:?}").as_bytes());
        let mut repro = format!(
            "cargo run -q -p h3cdn-experiments --bin visit_one -- \
             --pages {} --seed {} --site {site} --vantage {vantage} --mode {mode}",
            w.num_pages, w.seed
        );
        if self.config.inject_panic_site == Some(site) {
            repro = format!("H3CDN_PANIC_SITE={site} {repro}");
        }
        JobMeta {
            label: format!("site {site} {mode} @ {vantage} cfg={cfg_hash:016x}"),
            repro,
        }
    }

    /// Metadata for one consecutive pass.
    fn pass_meta(&self, vantage: Vantage, mode: ProtocolMode) -> JobMeta {
        let w = &self.config.workload;
        JobMeta {
            label: format!(
                "consecutive pass {} @ {}",
                mode.label(),
                vantage.name().to_lowercase()
            ),
            repro: format!(
                "cargo run -q -p h3cdn-experiments --bin table3 -- --pages {} --seed {}",
                w.num_pages, w.seed
            ),
        }
    }

    /// Executes a batch of keyed jobs on the configured execution
    /// layer: the plain deterministic pool when `config.durable` is
    /// `None` (every result `Some`, a panic aborts the process), the
    /// crash-safe runner otherwise (quarantined jobs come back `None`
    /// and land in the campaign's quarantine sink; journal hits are
    /// counted in [`resumed_jobs`](Self::resumed_jobs)).
    ///
    /// The journal section is `prefix` plus a content hash over every
    /// job's metadata, so distinct batches never share journal entries
    /// even within one run.
    pub fn run_durable<K, T, F>(
        &self,
        prefix: &str,
        jobs: Vec<(K, JobMeta, F)>,
    ) -> Vec<(K, Option<T>)>
    where
        K: Ord + Send,
        T: Send + Serialize + Deserialize,
        F: Fn() -> T + Send + Sync,
    {
        let Some(ctx) = &self.config.durable else {
            let plain: Vec<(K, F)> = jobs.into_iter().map(|(k, _, f)| (k, f)).collect();
            return run_keyed(&self.config.runner, plain)
                .into_iter()
                .map(|(k, v)| (k, Some(v)))
                .collect();
        };
        let mut ident = String::new();
        for (_, meta, _) in &jobs {
            ident.push_str(&meta.label);
            ident.push('\u{1f}');
            ident.push_str(&meta.repro);
            ident.push('\n');
        }
        let section = format!("{prefix}-{:016x}", fnv1a64(ident.as_bytes()));
        let DurableReport {
            results,
            failures,
            resumed,
        } = run_keyed_durable(&self.config.runner, ctx, &section, jobs);
        self.resumed.fetch_add(resumed, Ordering::Relaxed);
        if !failures.is_empty() {
            self.quarantine
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend(failures);
        }
        results
    }

    /// Single visits of every page from one vantage under one mode, in
    /// corpus order, executed as keyed jobs on the configured execution
    /// layer (parallel, order-stable, durable when configured). Under a
    /// durable context a quarantined visit is dropped from the output
    /// (reported via [`take_quarantine`](Self::take_quarantine)) — so
    /// single-pass experiments degrade to "all pages but the poisoned
    /// ones" instead of aborting.
    pub fn visit_all(&self, vantage: Vantage, mode: ProtocolMode) -> Vec<(usize, HarPage)> {
        let base = self
            .config
            .visit
            .clone()
            .with_vantage(vantage)
            .with_mode(mode);
        let jobs: Vec<_> = (0..self.corpus.pages.len())
            .map(|site| {
                let cfg = base.clone();
                let meta = self.visit_meta(site, &cfg);
                ((site as u32, 0u32, 0u32), meta, move || {
                    self.page_visit(site, &cfg)
                })
            })
            .collect();
        self.run_durable("visits", jobs)
            .into_iter()
            .filter_map(|((site, _, _), har)| Some((site as usize, har?)))
            .collect()
    }

    /// Visits one page once, isolated (no prior session state).
    pub fn visit(&self, site: usize, vantage: Vantage, mode: ProtocolMode) -> HarPage {
        let cfg = self
            .config
            .visit
            .clone()
            .with_mode(mode)
            .with_vantage(vantage);
        self.page_visit(site, &cfg)
    }

    /// Visits one page with an explicit visit config (loss sweeps etc.).
    pub fn visit_with(&self, site: usize, cfg: &VisitConfig) -> HarPage {
        self.page_visit(site, cfg)
    }

    /// The paper's paired measurement of one page from one vantage: an
    /// H2 visit and an H3 visit over identical paths, reduced to a
    /// [`PageComparison`].
    pub fn compare_page(&self, site: usize, vantage: Vantage) -> PageComparison {
        let base = self.config.visit.clone().with_vantage(vantage);
        self.compare_page_with(site, &base)
    }

    /// Paired measurement under an explicit base config (the mode field
    /// is overridden per side).
    pub fn compare_page_with(&self, site: usize, base: &VisitConfig) -> PageComparison {
        let h2 = self.page_visit(site, &base.clone().with_mode(ProtocolMode::H2Only));
        let h3 = self.page_visit(site, &base.clone().with_mode(ProtocolMode::H3Enabled));
        self.build_comparison(&self.corpus.pages[site], &h2, &h3)
    }

    /// Runs a batch of paired H2/H3 measurements on the configured
    /// runner and returns them keyed, in ascending key order.
    ///
    /// Each spec `(key, site, base_config)` expands into two jobs —
    /// `(key, site, 0)` for the H2 side and `(key, site, 1)` for the H3
    /// side — so the pool load-balances at visit granularity. The merge
    /// pairs the sides back up and reduces them with
    /// [`build_comparison`](Self::build_comparison). Output is
    /// bit-identical for every worker count.
    ///
    /// Under a durable context a page whose *either* side is
    /// quarantined is dropped from the output (and reported via
    /// [`take_quarantine`](Self::take_quarantine)); without one, a
    /// failing visit panics as before.
    pub fn compare_batch<K>(&self, specs: Vec<(K, usize, VisitConfig)>) -> Vec<(K, PageComparison)>
    where
        K: Ord + Clone + Send,
    {
        let mut jobs = Vec::with_capacity(specs.len() * 2);
        for (key, site, base) in specs {
            for (variant, mode) in [
                (0u32, ProtocolMode::H2Only),
                (1u32, ProtocolMode::H3Enabled),
            ] {
                let cfg = base.clone().with_mode(mode);
                let meta = self.visit_meta(site, &cfg);
                let key = key.clone();
                jobs.push(((key, site, variant), meta, move || {
                    self.page_visit(site, &cfg)
                }));
            }
        }
        let sides = self.run_durable("pairs", jobs);
        sides
            .chunks_exact(2)
            .filter_map(|pair| {
                let ((key, site, _), h2) = &pair[0];
                let (_, h3) = &pair[1];
                match (h2, h3) {
                    (Some(h2), Some(h3)) => Some((
                        key.clone(),
                        self.build_comparison(&self.corpus.pages[*site], h2, h3),
                    )),
                    // A quarantined side drops the whole pair: a
                    // half-measured page is not a comparison.
                    _ => None,
                }
            })
            .collect()
    }

    /// Paired measurements of every page from one vantage, in corpus
    /// order (parallel, order-stable).
    pub fn compare_vantage(&self, vantage: Vantage) -> Vec<PageComparison> {
        let base = self.config.visit.clone().with_vantage(vantage);
        let specs = (0..self.corpus.pages.len())
            .map(|site| (site as u32, site, base.clone()))
            .collect();
        self.compare_batch(specs)
            .into_iter()
            .map(|(_, cmp)| cmp)
            .collect()
    }

    /// Paired measurements of every page from every configured vantage
    /// (the full Fig. 6/7 dataset), vantage-major in configuration
    /// order, sites ascending — identical to the serial double loop.
    pub fn compare_all(&self) -> Vec<PageComparison> {
        let mut specs = Vec::new();
        for (vi, &v) in self.config.vantages.iter().enumerate() {
            let base = self.config.visit.clone().with_vantage(v);
            for site in 0..self.corpus.pages.len() {
                specs.push(((vi as u32, site as u32), site, base.clone()));
            }
        }
        self.compare_batch(specs)
            .into_iter()
            .map(|(_, cmp)| cmp)
            .collect()
    }

    /// One consecutive pass (session state carried across pages) under
    /// an explicit mode. An aborted page surfaces as a `String`-payload
    /// panic, same contract as [`page_visit`](Self::page_visit).
    fn consecutive_visit(&self, vantage: Vantage, mode: ProtocolMode) -> Vec<HarPage> {
        let pages: Vec<&Webpage> = self.corpus.pages.iter().collect();
        let cfg = self
            .config
            .visit
            .clone()
            .with_vantage(vantage)
            .with_mode(mode);
        match try_visit_consecutively(&pages, &self.corpus.domains, &cfg, TicketStore::new()) {
            Ok((hars, _)) => hars,
            Err(aborted) => abort_to_panic(&aborted),
        }
    }

    /// Consecutive visits (§VI-D): pages in corpus order, session state
    /// carried across pages, one pass per protocol mode. The two passes
    /// run as parallel jobs. Returns `(h2_pages, h3_pages)`
    /// index-aligned with the corpus. Under a durable context a
    /// quarantined pass comes back empty (and is reported via
    /// [`take_quarantine`](Self::take_quarantine)).
    pub fn consecutive_pass(&self, vantage: Vantage) -> (Vec<HarPage>, Vec<HarPage>) {
        let jobs: Vec<_> = [
            (0u32, ProtocolMode::H2Only),
            (1u32, ProtocolMode::H3Enabled),
        ]
        .into_iter()
        .map(|(variant, mode)| {
            (
                (0u32, 0u32, variant),
                self.pass_meta(vantage, mode),
                move || self.consecutive_visit(vantage, mode),
            )
        })
        .collect();
        let mut out = self
            .run_durable("consecutive", jobs)
            .into_iter()
            .map(|(_, pass)| pass.unwrap_or_default());
        let h2 = out.next().unwrap_or_default();
        let h3 = out.next().unwrap_or_default();
        (h2, h3)
    }

    /// [`consecutive_pass`](Self::consecutive_pass) from every
    /// configured vantage, all passes pooled as parallel jobs. Returns
    /// `(vantage, h2_pages, h3_pages)` in configuration order
    /// (quarantined passes empty, as in `consecutive_pass`).
    pub fn consecutive_all(&self) -> Vec<(Vantage, Vec<HarPage>, Vec<HarPage>)> {
        let mut jobs = Vec::with_capacity(self.config.vantages.len() * 2);
        for (vi, &v) in self.config.vantages.iter().enumerate() {
            for (variant, mode) in [
                (0u32, ProtocolMode::H2Only),
                (1u32, ProtocolMode::H3Enabled),
            ] {
                jobs.push((
                    (vi as u32, 0u32, variant),
                    self.pass_meta(v, mode),
                    move || self.consecutive_visit(v, mode),
                ));
            }
        }
        let out = self.run_durable("consecutive-all", jobs);
        let mut passes = out.into_iter().map(|(_, pass)| pass.unwrap_or_default());
        self.config
            .vantages
            .iter()
            .map(|&v| {
                let h2 = passes.next().unwrap_or_default();
                let h3 = passes.next().unwrap_or_default();
                (v, h2, h3)
            })
            .collect()
    }

    /// Builds the [`PageComparison`] for a paired pair of HARs.
    pub fn build_comparison(&self, page: &Webpage, h2: &HarPage, h3: &HarPage) -> PageComparison {
        PageComparison {
            site: page.site,
            vantage: h2.vantage.clone(),
            plt_reduction_ms: plt_reduction_ms(h2, h3),
            reused_h2: h2.reused_connection_count(),
            reused_h3: h3.reused_connection_count(),
            resumed_h3: h3.resumed_connection_count(),
            h3_enabled_cdn: page.h3_enabled_cdn_count(),
            cdn_resources: page.cdn_resources().count(),
            providers_used: page.providers_used().len(),
            entries: entry_reductions(h2, h3),
        }
    }
}

/// Converts an [`AbortedVisit`] into the `String`-payload panic the
/// durable runner classifies: stall-backed aborts (engine budget /
/// wedged event loop) carry [`STALLED_PREFIX`], stranded-but-live
/// aborts a plain `aborted visit:` message. Without a durable context
/// the panic propagates and aborts the process, preserving the
/// pre-durable `visit_page` behavior.
fn abort_to_panic(aborted: &AbortedVisit) -> ! {
    let msg = if aborted.stall.is_some() {
        format!("{STALLED_PREFIX}{aborted}")
    } else {
        format!("aborted visit: {aborted}")
    };
    std::panic::panic_any(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign() -> MeasurementCampaign {
        MeasurementCampaign::new(CampaignConfig::small(4, 11))
    }

    #[test]
    fn comparison_has_full_pairing() {
        let c = campaign();
        let cmp = c.compare_page(0, Vantage::Utah);
        assert_eq!(cmp.entries.len(), c.corpus().pages[0].request_count());
        assert_eq!(cmp.site, 0);
        assert_eq!(
            cmp.cdn_resources,
            c.corpus().pages[0].cdn_resources().count()
        );
    }

    #[test]
    fn compare_all_covers_pages_times_vantages() {
        let mut cfg = CampaignConfig::small(3, 5);
        cfg.vantages = vec![Vantage::Utah, Vantage::Clemson];
        let c = MeasurementCampaign::new(cfg);
        assert_eq!(c.compare_all().len(), 6);
    }

    #[test]
    fn visits_are_reproducible() {
        let c = campaign();
        let a = c.visit(1, Vantage::Utah, ProtocolMode::H3Enabled);
        let b = c.visit(1, Vantage::Utah, ProtocolMode::H3Enabled);
        assert_eq!(a.plt_ms, b.plt_ms);
    }

    #[test]
    fn consecutive_pass_resumes_later_pages() {
        let c = campaign();
        let (_, h3) = c.consecutive_pass(Vantage::Utah);
        let resumed: usize = h3.iter().map(HarPage::resumed_connection_count).sum();
        assert!(resumed > 0);
    }

    #[test]
    fn compare_vantage_matches_per_page_calls() {
        let c = campaign();
        let batch = c.compare_vantage(Vantage::Utah);
        assert_eq!(batch.len(), 4);
        for (site, cmp) in batch.iter().enumerate() {
            let single = c.compare_page(site, Vantage::Utah);
            assert_eq!(cmp.plt_reduction_ms, single.plt_reduction_ms, "site {site}");
            assert_eq!(cmp.site, single.site);
        }
    }

    #[test]
    fn compare_all_is_worker_count_invariant() {
        let mut cfg = CampaignConfig::small(3, 5);
        cfg.vantages = vec![Vantage::Utah, Vantage::Wisconsin];
        let serial = MeasurementCampaign::new(cfg.clone().with_runner(RunnerConfig::serial()));
        let parallel =
            MeasurementCampaign::new(cfg.with_runner(RunnerConfig::default().with_jobs(8)));
        let a = serial.compare_all();
        let b = parallel.compare_all();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.site, y.site);
            assert_eq!(x.vantage, y.vantage);
            assert_eq!(x.plt_reduction_ms.to_bits(), y.plt_reduction_ms.to_bits());
            assert_eq!(x.entries.len(), y.entries.len());
        }
    }

    #[test]
    fn consecutive_all_matches_single_vantage_pass() {
        let c = campaign();
        let all = c.consecutive_all();
        assert_eq!(all.len(), 1);
        let (v, h2, h3) = &all[0];
        assert_eq!(*v, Vantage::Utah);
        let (sh2, sh3) = c.consecutive_pass(Vantage::Utah);
        assert_eq!(h2.len(), sh2.len());
        assert_eq!(h3.len(), sh3.len());
        for (a, b) in h3.iter().zip(&sh3) {
            assert_eq!(a.plt_ms.to_bits(), b.plt_ms.to_bits());
        }
    }
}
