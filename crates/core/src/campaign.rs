//! The measurement campaign: corpus + visit machinery + pairing.

use h3cdn_browser::{visit_consecutively, visit_page, ProtocolMode, VisitConfig};
use h3cdn_cdn::Vantage;
use h3cdn_har::{entry_reductions, plt_reduction_ms, HarPage, PageComparison};
use h3cdn_transport::tls::TicketStore;
use h3cdn_web::{generate, Corpus, Webpage, WorkloadSpec};

/// Configuration of one campaign (corpus + probing setup).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Workload specification (pages, sizes, calibration).
    pub workload: WorkloadSpec,
    /// Vantage points to probe from (the paper uses all three).
    pub vantages: Vec<Vantage>,
    /// Base visit configuration; experiments override mode/loss per run.
    pub visit: VisitConfig,
}

impl Default for CampaignConfig {
    /// Paper-scale: 325 pages, three vantages.
    fn default() -> Self {
        CampaignConfig {
            workload: WorkloadSpec::default(),
            vantages: Vantage::ALL.to_vec(),
            visit: VisitConfig::default(),
        }
    }
}

impl CampaignConfig {
    /// A scaled-down campaign (one vantage) for tests, examples and
    /// benches.
    pub fn small(pages: usize, seed: u64) -> Self {
        CampaignConfig {
            workload: WorkloadSpec::default().with_pages(pages).with_seed(seed),
            vantages: vec![Vantage::Utah],
            visit: VisitConfig::default(),
        }
    }
}

/// A campaign: the corpus plus everything needed to measure it.
///
/// All visit methods are pure functions of the campaign configuration —
/// identical campaigns produce identical HARs.
#[derive(Debug)]
pub struct MeasurementCampaign {
    config: CampaignConfig,
    corpus: Corpus,
}

impl MeasurementCampaign {
    /// Generates the corpus and readies the campaign.
    pub fn new(config: CampaignConfig) -> Self {
        let corpus = generate(&config.workload);
        MeasurementCampaign { config, corpus }
    }

    /// The generated corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The configured vantages.
    pub fn vantages(&self) -> &[Vantage] {
        &self.config.vantages
    }

    /// Visits one page once, isolated (no prior session state).
    pub fn visit(&self, site: usize, vantage: Vantage, mode: ProtocolMode) -> HarPage {
        let cfg = self
            .config
            .visit
            .clone()
            .with_mode(mode)
            .with_vantage(vantage);
        visit_page(
            &self.corpus.pages[site],
            &self.corpus.domains,
            &cfg,
            TicketStore::new(),
        )
        .har
    }

    /// Visits one page with an explicit visit config (loss sweeps etc.).
    pub fn visit_with(&self, site: usize, cfg: &VisitConfig) -> HarPage {
        visit_page(
            &self.corpus.pages[site],
            &self.corpus.domains,
            cfg,
            TicketStore::new(),
        )
        .har
    }

    /// The paper's paired measurement of one page from one vantage: an
    /// H2 visit and an H3 visit over identical paths, reduced to a
    /// [`PageComparison`].
    pub fn compare_page(&self, site: usize, vantage: Vantage) -> PageComparison {
        let base = self.config.visit.clone().with_vantage(vantage);
        self.compare_page_with(site, &base)
    }

    /// Paired measurement under an explicit base config (the mode field
    /// is overridden per side).
    pub fn compare_page_with(&self, site: usize, base: &VisitConfig) -> PageComparison {
        let page = &self.corpus.pages[site];
        let h2 = visit_page(
            page,
            &self.corpus.domains,
            &base.clone().with_mode(ProtocolMode::H2Only),
            TicketStore::new(),
        )
        .har;
        let h3 = visit_page(
            page,
            &self.corpus.domains,
            &base.clone().with_mode(ProtocolMode::H3Enabled),
            TicketStore::new(),
        )
        .har;
        self.build_comparison(page, &h2, &h3)
    }

    /// Paired measurements of every page from every configured vantage
    /// (the full Fig. 6/7 dataset).
    pub fn compare_all(&self) -> Vec<PageComparison> {
        let mut out = Vec::new();
        for &v in &self.config.vantages {
            for site in 0..self.corpus.pages.len() {
                out.push(self.compare_page(site, v));
            }
        }
        out
    }

    /// Consecutive visits (§VI-D): pages in corpus order, session state
    /// carried across pages, one pass per protocol mode. Returns
    /// `(h2_pages, h3_pages)` index-aligned with the corpus.
    pub fn consecutive_pass(&self, vantage: Vantage) -> (Vec<HarPage>, Vec<HarPage>) {
        let pages: Vec<&Webpage> = self.corpus.pages.iter().collect();
        let (h2, _) = visit_consecutively(
            &pages,
            &self.corpus.domains,
            &self
                .config
                .visit
                .clone()
                .with_vantage(vantage)
                .with_mode(ProtocolMode::H2Only),
            TicketStore::new(),
        );
        let (h3, _) = visit_consecutively(
            &pages,
            &self.corpus.domains,
            &self
                .config
                .visit
                .clone()
                .with_vantage(vantage)
                .with_mode(ProtocolMode::H3Enabled),
            TicketStore::new(),
        );
        (h2, h3)
    }

    /// Builds the [`PageComparison`] for a paired pair of HARs.
    pub fn build_comparison(
        &self,
        page: &Webpage,
        h2: &HarPage,
        h3: &HarPage,
    ) -> PageComparison {
        PageComparison {
            site: page.site,
            vantage: h2.vantage.clone(),
            plt_reduction_ms: plt_reduction_ms(h2, h3),
            reused_h2: h2.reused_connection_count(),
            reused_h3: h3.reused_connection_count(),
            resumed_h3: h3.resumed_connection_count(),
            h3_enabled_cdn: page.h3_enabled_cdn_count(),
            cdn_resources: page.cdn_resources().count(),
            providers_used: page.providers_used().len(),
            entries: entry_reductions(h2, h3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign() -> MeasurementCampaign {
        MeasurementCampaign::new(CampaignConfig::small(4, 11))
    }

    #[test]
    fn comparison_has_full_pairing() {
        let c = campaign();
        let cmp = c.compare_page(0, Vantage::Utah);
        assert_eq!(cmp.entries.len(), c.corpus().pages[0].request_count());
        assert_eq!(cmp.site, 0);
        assert_eq!(cmp.cdn_resources, c.corpus().pages[0].cdn_resources().count());
    }

    #[test]
    fn compare_all_covers_pages_times_vantages() {
        let mut cfg = CampaignConfig::small(3, 5);
        cfg.vantages = vec![Vantage::Utah, Vantage::Clemson];
        let c = MeasurementCampaign::new(cfg);
        assert_eq!(c.compare_all().len(), 6);
    }

    #[test]
    fn visits_are_reproducible() {
        let c = campaign();
        let a = c.visit(1, Vantage::Utah, ProtocolMode::H3Enabled);
        let b = c.visit(1, Vantage::Utah, ProtocolMode::H3Enabled);
        assert_eq!(a.plt_ms, b.plt_ms);
    }

    #[test]
    fn consecutive_pass_resumes_later_pages() {
        let c = campaign();
        let (_, h3) = c.consecutive_pass(Vantage::Utah);
        let resumed: usize = h3.iter().map(HarPage::resumed_connection_count).sum();
        assert!(resumed > 0);
    }
}
