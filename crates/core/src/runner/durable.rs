//! Crash-safe execution on top of the deterministic runner:
//! checkpoint/resume, per-job panic isolation with deterministic
//! retries, quarantine, and watchdog budgets.
//!
//! [`run_keyed_durable`] has the same merge contract as
//! [`run_keyed`](crate::runner::run_keyed) — jobs are stably sorted by
//! key before execution and merged in key order, so output is
//! bit-identical for every worker count — plus three durability
//! layers:
//!
//! 1. **Checkpoint/resume.** With a [`RunDir`] attached, every
//!    completed job is journaled immediately (write-temp-fsync-rename,
//!    content-hashed) under a *section* derived from the job set. On a
//!    resume, journal entries that deserialize and verify are loaded
//!    instead of re-executed. Because jobs are identified by their
//!    ordinal in the sorted order and the section hash covers every
//!    job's identity, a journal entry can only ever be replayed into
//!    the exact job that produced it.
//! 2. **Panic isolation + quarantine.** Each attempt runs under
//!    [`std::panic::catch_unwind`]; a panic becomes a typed
//!    [`JobFailure`] instead of taking down the worker pool. Failed
//!    jobs are retried with bounded exponential backoff whose delays
//!    are *derived from the run seed* (recorded in the failure, so a
//!    quarantined job documents its own retry schedule); after
//!    `max_attempts` the failure lands in `quarantine.json` and the
//!    merge reports it instead of aborting the campaign.
//! 3. **Watchdog budgets.** The deterministic watchdog is the
//!    sim-event budget (`VisitConfig::max_sim_events` → the engine's
//!    `StallReport`), which reaches this layer as a stalled-visit
//!    panic. The optional *wall-clock* budget is a second, inherently
//!    nondeterministic net for genuinely wedged host code: a completed
//!    attempt that overran the budget is demoted to a stalled
//!    [`JobFailure`] (off by default; enabling it trades bit-stable
//!    failure sets for liveness).
//!
//! The `AssertUnwindSafe` boundary is sound here because job closures
//! are pure functions of captured immutable state: a panicking attempt
//! abandons all of its partial state, and the retry re-runs from the
//! same inputs.

use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::persist::{fnv1a64, RunDir};
use crate::runner::{run_keyed, RunnerConfig};

/// Prefix campaigns put on stalled-visit panic payloads so the durable
/// layer can mark the resulting [`JobFailure`] as stall-backed.
pub(crate) const STALLED_PREFIX: &str = "stalled visit: ";

/// Retry schedule for panicking jobs. Delays are deterministic
/// functions of `(run seed, section, seq, attempt)` — see
/// [`backoff_ms`] — bounded by `cap_backoff_ms`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (first try included); at least 1.
    pub max_attempts: u32,
    /// Base delay before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub cap_backoff_ms: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms base, 250 ms cap — campaigns are pure, so
    /// retries exist to survive *environmental* flukes (memory
    /// pressure, a wedged allocator), not to wait out remote services.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 10,
            cap_backoff_ms: 250,
        }
    }
}

/// One quarantined job: everything needed to understand and replay the
/// failure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobFailure {
    /// Journal section the job belonged to.
    pub section: String,
    /// Ordinal of the job in the section's sorted key order.
    pub seq: u64,
    /// Human-readable job identity (site, mode, vantage, config hash).
    pub label: String,
    /// The final panic message (or watchdog diagnosis).
    pub error: String,
    /// Whether the failure is stall-backed (sim-event budget exhausted
    /// / all-stalled engine / wall-clock budget overrun) rather than a
    /// plain panic.
    pub stalled: bool,
    /// Attempts consumed (= `max_attempts` unless the watchdog fired).
    pub attempts: u32,
    /// The run seed the retry schedule was derived from.
    pub run_seed: u64,
    /// The deterministic backoff delays that were applied, in order.
    pub backoff_ms: Vec<u64>,
    /// A minimal deterministic repro command line for this job.
    pub repro: String,
}

/// Per-job metadata carried next to the closure: a human label and the
/// deterministic repro command recorded on failure. Both feed the
/// section hash, so they must uniquely identify the job's inputs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JobMeta {
    /// Human-readable job identity.
    pub label: String,
    /// Minimal repro command line.
    pub repro: String,
}

/// Shared durability settings for a run.
#[derive(Debug, Clone)]
pub struct DurableContext {
    /// Seed the retry backoff schedule derives from (conventionally
    /// the campaign seed).
    pub run_seed: u64,
    /// Retry schedule for panicking jobs.
    pub retry: RetryPolicy,
    /// Optional wall-clock budget per attempt, in milliseconds.
    /// **Nondeterministic** demotion — see the module docs. `None`
    /// (default) disables it.
    pub wall_budget_ms: Option<u64>,
    /// Checkpoint directory; `None` keeps isolation + retries but
    /// journals nothing.
    pub checkpoint: Option<RunDir>,
}

impl DurableContext {
    /// Isolation + deterministic retries, no checkpointing.
    pub fn new(run_seed: u64) -> Self {
        DurableContext {
            run_seed,
            retry: RetryPolicy::default(),
            wall_budget_ms: None,
            checkpoint: None,
        }
    }

    /// Returns a copy with the given retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Returns a copy with the given wall-clock budget (milliseconds).
    pub fn with_wall_budget_ms(mut self, budget: Option<u64>) -> Self {
        self.wall_budget_ms = budget;
        self
    }

    /// Returns a copy journaling to (and resuming from) `run`.
    pub fn with_checkpoint(mut self, run: RunDir) -> Self {
        self.checkpoint = Some(run);
        self
    }
}

/// The outcome of a durable batch.
#[derive(Debug)]
pub(crate) struct DurableReport<K, T> {
    /// Every job in ascending key order; `None` marks a quarantined
    /// job (its [`JobFailure`] is in `failures`).
    pub results: Vec<(K, Option<T>)>,
    /// Quarantined jobs, in ascending `seq` order.
    pub failures: Vec<JobFailure>,
    /// Jobs loaded from the checkpoint journal instead of executed.
    pub resumed: usize,
}

/// The deterministic backoff delay (milliseconds) before retry
/// `attempt` (1-based: the delay *after* the `attempt`-th failure).
///
/// Exponential with full jitter in `[cap/2, cap]`, where `cap` is
/// `base · 2^(attempt-1)` bounded by the policy cap; the jitter draw is
/// a pure function of `(run_seed, section_hash, seq, attempt)`, so a
/// replay of the same run applies the same schedule.
pub fn backoff_ms(
    run_seed: u64,
    section_hash: u64,
    seq: u64,
    attempt: u32,
    retry: &RetryPolicy,
) -> u64 {
    let exp = attempt.saturating_sub(1).min(16);
    let cap = retry
        .base_backoff_ms
        .max(1)
        .saturating_mul(1u64 << exp)
        .min(retry.cap_backoff_ms.max(1));
    let draw = splitmix64(
        run_seed ^ section_hash.rotate_left(17) ^ (seq << 8) ^ u64::from(attempt).rotate_left(48),
    );
    let half = cap / 2;
    half + draw % (cap - half + 1)
}

/// SplitMix64 — the standalone mixing step used for jitter draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runs keyed jobs crash-safely: stable key-sorted order, per-job
/// panic isolation with deterministic retries, optional journaling and
/// resume, quarantine on exhaustion. See the module docs for the
/// guarantees.
///
/// `section` names the journal namespace; callers derive it from a
/// content hash of the job set so distinct batches never share
/// entries. Results come back in ascending key order with quarantined
/// jobs as `None` — with no failures the `Some` sequence is
/// bit-identical to [`run_keyed`](crate::runner::run_keyed) over the
/// same jobs at any worker count.
pub(crate) fn run_keyed_durable<K, T, F>(
    config: &RunnerConfig,
    ctx: &DurableContext,
    section: &str,
    mut jobs: Vec<(K, JobMeta, F)>,
) -> DurableReport<K, T>
where
    K: Ord + Send,
    T: Send + Serialize + Deserialize,
    F: Fn() -> T + Send + Sync,
{
    // Same stable pre-sort as `run_keyed`: the sorted ordinal is the
    // job's durable identity (`seq`).
    jobs.sort_by(|a, b| a.0.cmp(&b.0));
    let section_hash = fnv1a64(section.as_bytes());
    let total = jobs.len();

    let mut keys: Vec<K> = Vec::with_capacity(total);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(total);
    let mut pending: Vec<(usize, (JobMeta, F))> = Vec::new();
    let mut resumed = 0usize;

    for (seq, (key, meta, job)) in jobs.into_iter().enumerate() {
        keys.push(key);
        let loaded = ctx
            .checkpoint
            .as_ref()
            .and_then(|run| run.load_job(section, seq))
            .and_then(|bytes| String::from_utf8(bytes).ok())
            .and_then(|text| serde_json::from_str::<T>(&text).ok());
        if loaded.is_some() {
            resumed += 1;
            slots.push(loaded);
        } else {
            slots.push(None);
            pending.push((seq, (meta, job)));
        }
    }

    // Execute the pending jobs on the plain deterministic pool, each
    // wrapped in the isolation/retry/journal shell. Keys are the seqs,
    // so the merge hands results back in seq order.
    let wrapped: Vec<(usize, _)> = pending
        .into_iter()
        .map(|(seq, (meta, job))| {
            (seq, move || {
                let outcome = run_attempts(ctx, section, section_hash, seq, &meta, &job);
                if let (Ok(value), Some(run)) = (&outcome, &ctx.checkpoint) {
                    journal(run, section, seq, value);
                }
                outcome
            })
        })
        .collect();
    let executed = run_keyed(config, wrapped);

    let mut failures: Vec<JobFailure> = Vec::new();
    for (seq, outcome) in executed {
        match outcome {
            Ok(value) => {
                if let Some(slot) = slots.get_mut(seq) {
                    *slot = Some(value);
                }
            }
            Err(failure) => failures.push(*failure),
        }
    }

    if let Some(run) = &ctx.checkpoint {
        merge_quarantine(run, section, &failures);
    }
    if !failures.is_empty() {
        eprintln!(
            "h3cdn runner: {} of {total} job(s) quarantined in section {section}:",
            failures.len()
        );
        for f in &failures {
            eprintln!("  - {}: {} (repro: {})", f.label, f.error, f.repro);
        }
    }

    DurableReport {
        results: keys.into_iter().zip(slots).collect(),
        failures,
        resumed,
    }
}

/// One job's isolation/retry shell.
fn run_attempts<T, F>(
    ctx: &DurableContext,
    section: &str,
    section_hash: u64,
    seq: usize,
    meta: &JobMeta,
    job: &F,
) -> Result<T, Box<JobFailure>>
where
    F: Fn() -> T,
{
    let max_attempts = ctx.retry.max_attempts.max(1);
    let mut backoffs: Vec<u64> = Vec::new();
    let mut last_error = String::new();
    // Boxed so the hot `Result` stays pointer-sized on the Ok path.
    let failure = |error: String, stalled: bool, attempts: u32, backoffs: Vec<u64>| JobFailure {
        section: section.to_owned(),
        seq: seq as u64,
        label: meta.label.clone(),
        error,
        stalled,
        attempts,
        run_seed: ctx.run_seed,
        backoff_ms: backoffs,
        repro: meta.repro.clone(),
    };

    for attempt in 1..=max_attempts {
        // Watchdog only — never feeds simulated time or results.
        // h3cdn-lint: allow(wall-clock)
        let started = Instant::now();
        match panic::catch_unwind(AssertUnwindSafe(job)) {
            Ok(value) => {
                if let Some(budget) = ctx.wall_budget_ms {
                    let elapsed_ms = started.elapsed().as_millis();
                    if elapsed_ms > u128::from(budget) {
                        // A deterministic job that overran once will
                        // overrun again: demote without retrying.
                        return Err(Box::new(failure(
                            format!(
                                "{STALLED_PREFIX}wall-clock budget exceeded \
                                 ({elapsed_ms} ms > {budget} ms)"
                            ),
                            true,
                            attempt,
                            backoffs,
                        )));
                    }
                }
                return Ok(value);
            }
            Err(payload) => {
                last_error = panic_message(payload.as_ref());
                if attempt < max_attempts {
                    let delay =
                        backoff_ms(ctx.run_seed, section_hash, seq as u64, attempt, &ctx.retry);
                    backoffs.push(delay);
                    std::thread::sleep(Duration::from_millis(delay));
                }
            }
        }
    }
    let stalled = last_error.starts_with(STALLED_PREFIX);
    Err(Box::new(failure(
        last_error,
        stalled,
        max_attempts,
        backoffs,
    )))
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Journals one completed job; journal I/O errors are reported but
/// never fail the job (the in-memory result is still returned).
fn journal<T: Serialize>(run: &RunDir, section: &str, seq: usize, value: &T) {
    match serde_json::to_string(value) {
        Ok(json) => {
            if let Err(e) = run.store_job(section, seq, json.as_bytes()) {
                eprintln!("h3cdn runner: journal write failed for {section}/{seq}: {e}");
            }
        }
        Err(e) => eprintln!("h3cdn runner: journal serialize failed for {section}/{seq}: {e}"),
    }
}

/// The quarantine file shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QuarantineFile {
    /// All quarantined jobs of the run, sorted by `(section, seq)`.
    failures: Vec<JobFailure>,
}

/// Rewrites `quarantine.json`: existing entries of *other* sections
/// are kept, this section's entries are replaced with `fresh`.
///
/// Entries are keyed by `(section, seq)`, so a job that fails again on
/// a resumed run *replaces* its previous record instead of appending a
/// duplicate — the file stays bounded by the number of distinct failing
/// jobs no matter how often a run is resumed (and a pre-existing file
/// with duplicates is collapsed on the next merge).
fn merge_quarantine(run: &RunDir, section: &str, fresh: &[JobFailure]) {
    let mut by_key: std::collections::BTreeMap<(String, u64), JobFailure> = run
        .read_quarantine()
        .and_then(|text| serde_json::from_str::<QuarantineFile>(&text).ok())
        .map(|q| q.failures)
        .unwrap_or_default()
        .into_iter()
        .map(|f| ((f.section.clone(), f.seq), f))
        .collect();
    by_key.retain(|(s, _), _| s != section);
    for f in fresh {
        by_key.insert((f.section.clone(), f.seq), f.clone());
    }
    // BTreeMap iteration is already the (section, seq) sort order.
    let file = QuarantineFile {
        failures: by_key.into_values().collect(),
    };
    match serde_json::to_string_pretty(&file) {
        Ok(json) => {
            if let Err(e) = run.write_quarantine(&json) {
                eprintln!("h3cdn runner: quarantine write failed: {e}");
            }
        }
        Err(e) => eprintln!("h3cdn runner: quarantine serialize failed: {e}"),
    }
}

/// Parses a run's `quarantine.json` into failures (empty when absent
/// or unreadable).
#[cfg(test)]
pub(crate) fn read_quarantine(run: &RunDir) -> Vec<JobFailure> {
    run.read_quarantine()
        .and_then(|text| serde_json::from_str::<QuarantineFile>(&text).ok())
        .map(|q| q.failures)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use crate::persist::{Fingerprint, Manifest, MANIFEST_VERSION};

    fn tmp_run(tag: &str) -> RunDir {
        let tmp = std::env::temp_dir(); // test scratch only; h3cdn-lint: allow(env-read)
        let root: PathBuf = tmp.join(format!("h3cdn-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let run = RunDir::at(root);
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            run_id: tag.to_owned(),
            fingerprint: Fingerprint {
                seed: 1,
                scenario: tag.to_owned(),
                git_hash: "t".to_owned(),
                args: Vec::new(),
            },
            argv: Vec::new(),
        };
        run.prepare(&manifest, false).expect("prepare");
        run
    }

    fn meta(i: u32) -> JobMeta {
        JobMeta {
            label: format!("job {i}"),
            repro: format!("repro {i}"),
        }
    }

    #[test]
    fn clean_jobs_match_run_keyed_bitwise() {
        let ctx = DurableContext::new(9);
        for jobs in [1usize, 4] {
            let cfg = RunnerConfig::default().with_jobs(jobs);
            let batch: Vec<((u32, u32, u32), JobMeta, _)> = (0..10u32)
                .map(|i| ((0, i, 0), meta(i), move || f64::from(i) * 1.5))
                .collect();
            let report = run_keyed_durable(&cfg, &ctx, "s", batch);
            assert_eq!(report.failures.len(), 0);
            assert_eq!(report.resumed, 0);
            let values: Vec<f64> = report.results.into_iter().filter_map(|(_, v)| v).collect();
            let want: Vec<f64> = (0..10u32).map(|i| f64::from(i) * 1.5).collect();
            assert_eq!(values, want, "jobs={jobs}");
        }
    }

    #[test]
    fn panicking_job_is_retried_then_quarantined() {
        let attempts = AtomicUsize::new(0);
        let ctx = DurableContext::new(77).with_retry(RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 1,
            cap_backoff_ms: 4,
        });
        let cfg = RunnerConfig::serial();
        let batch = vec![((0u32, 0u32, 0u32), meta(0), {
            let attempts = &attempts;
            move || -> u32 {
                attempts.fetch_add(1, Ordering::Relaxed);
                panic!("boom at job 0");
            }
        })];
        let report = run_keyed_durable(&cfg, &ctx, "panics", batch);
        assert_eq!(attempts.load(Ordering::Relaxed), 3, "3 attempts made");
        assert_eq!(report.failures.len(), 1);
        let f = &report.failures[0];
        assert_eq!(f.attempts, 3);
        assert!(f.error.contains("boom at job 0"));
        assert!(!f.stalled);
        assert_eq!(f.run_seed, 77);
        assert_eq!(f.backoff_ms.len(), 2, "two retries, two delays");
        // The schedule is a pure function of the run identity.
        let hash = fnv1a64(b"panics");
        for (i, &b) in f.backoff_ms.iter().enumerate() {
            assert_eq!(b, backoff_ms(77, hash, 0, i as u32 + 1, &ctx.retry));
        }
        assert_eq!(report.results.len(), 1);
        assert!(report.results[0].1.is_none());
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let retry = RetryPolicy::default();
        for attempt in 1..=6u32 {
            let a = backoff_ms(5, 11, 3, attempt, &retry);
            let b = backoff_ms(5, 11, 3, attempt, &retry);
            assert_eq!(a, b, "deterministic");
            assert!(a <= retry.cap_backoff_ms, "bounded: {a}");
            assert!(a >= retry.base_backoff_ms / 2, "not degenerate: {a}");
        }
        // Seed-dependence: the full schedule (all attempts) differs
        // between run seeds even if single draws collide in the narrow
        // [cap/2, cap] jitter window.
        let schedule = |seed: u64| -> Vec<u64> {
            (1..=6u32)
                .map(|a| backoff_ms(seed, 11, 3, a, &retry))
                .collect()
        };
        assert_ne!(schedule(5), schedule(6), "seed-dependent");
    }

    #[test]
    fn checkpoint_resume_skips_completed_jobs() {
        let run = tmp_run("resume");
        let ctx = DurableContext::new(3).with_checkpoint(run.clone());
        let cfg = RunnerConfig::serial();
        let calls = AtomicUsize::new(0);
        #[allow(clippy::type_complexity)]
        fn make_batch(
            calls: &AtomicUsize,
        ) -> Vec<(
            (u32, u32, u32),
            JobMeta,
            impl Fn() -> u64 + Send + Sync + '_,
        )> {
            (0..6u32)
                .map(move |i| {
                    ((0, i, 0), meta(i), move || {
                        calls.fetch_add(1, Ordering::Relaxed);
                        u64::from(i) * 7
                    })
                })
                .collect()
        }
        let first = run_keyed_durable(&cfg, &ctx, "sec", make_batch(&calls));
        assert_eq!(calls.load(Ordering::Relaxed), 6);
        assert_eq!(first.resumed, 0);

        // Simulate an interruption after 2 of 6 jobs: drop the rest.
        for seq in 2..6usize {
            let _ = std::fs::remove_file(run.job_path("sec", seq));
        }
        calls.store(0, Ordering::Relaxed);
        let second = run_keyed_durable(&cfg, &ctx, "sec", make_batch(&calls));
        assert_eq!(second.resumed, 2, "two journal entries reused");
        assert_eq!(calls.load(Ordering::Relaxed), 4, "four re-executed");
        let a: Vec<u64> = first.results.into_iter().filter_map(|(_, v)| v).collect();
        let b: Vec<u64> = second.results.into_iter().filter_map(|(_, v)| v).collect();
        assert_eq!(a, b, "resumed output identical");
        let _ = std::fs::remove_dir_all(run.root());
    }

    #[test]
    fn quarantine_file_accumulates_across_sections() {
        let run = tmp_run("quar");
        let ctx = DurableContext::new(1).with_retry(RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 1,
            cap_backoff_ms: 1,
        });
        let ctx = ctx.with_checkpoint(run.clone());
        let cfg = RunnerConfig::serial();
        let bad = |name: &'static str| {
            vec![((0u32, 0u32, 0u32), meta(0), move || -> u32 {
                panic!("fail in {name}")
            })]
        };
        let _ = run_keyed_durable(&cfg, &ctx, "alpha", bad("alpha"));
        let _ = run_keyed_durable(&cfg, &ctx, "beta", bad("beta"));
        let all = read_quarantine(&run);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].section, "alpha");
        assert_eq!(all[1].section, "beta");
        // Re-quarantining the same job on repeated resumes must not
        // accumulate duplicates: (section, seq) keys the entry.
        let _ = run_keyed_durable(&cfg, &ctx, "alpha", bad("alpha"));
        let _ = run_keyed_durable(&cfg, &ctx, "alpha", bad("alpha"));
        let all = read_quarantine(&run);
        assert_eq!(all.len(), 2, "three alpha failures collapse to one");
        assert_eq!(all[0].section, "alpha");
        assert_eq!(all[1].section, "beta");
        // A pre-existing file carrying duplicates (written before the
        // dedupe landed) is collapsed by the next merge of any section.
        let mut seeded = read_quarantine(&run);
        let dup = seeded[1].clone();
        seeded.push(dup);
        let json =
            serde_json::to_string_pretty(&QuarantineFile { failures: seeded }).expect("serialize");
        run.write_quarantine(&json).expect("seed duplicates");
        assert_eq!(read_quarantine(&run).len(), 3, "duplicate seeded");
        let _ = run_keyed_durable(&cfg, &ctx, "gamma", bad("gamma"));
        let all = read_quarantine(&run);
        assert_eq!(all.len(), 3, "alpha, beta (deduped), gamma");
        assert_eq!(all[0].section, "alpha");
        assert_eq!(all[1].section, "beta");
        assert_eq!(all[2].section, "gamma");
        // Re-running a section with no failures clears its entries.
        let good = vec![((0u32, 0u32, 0u32), meta(0), move || 5u32)];
        let _ = run_keyed_durable(&cfg, &ctx, "alpha", good);
        let all = read_quarantine(&run);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].section, "beta");
        assert_eq!(all[1].section, "gamma");
        let _ = std::fs::remove_dir_all(run.root());
    }

    #[test]
    fn wall_budget_demotes_overrunning_jobs() {
        let ctx = DurableContext::new(1).with_wall_budget_ms(Some(0));
        let cfg = RunnerConfig::serial();
        let batch = vec![((0u32, 0u32, 0u32), meta(0), move || {
            std::thread::sleep(Duration::from_millis(5));
            1u32
        })];
        let report = run_keyed_durable(&cfg, &ctx, "wall", batch);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].stalled);
        assert!(report.failures[0].error.contains("wall-clock budget"));
    }
}
