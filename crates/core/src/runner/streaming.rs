//! Streaming variant of the keyed runner: key-ordered delivery to a
//! sink with a bounded in-flight result buffer.
//!
//! [`super::run_keyed`] materializes every result before the key-ordered
//! merge, which is fine at 325 pages and fatal at 10⁶. This module keeps
//! the same contract — jobs execute in any order, the sink observes
//! results in ascending key order, output is bit-identical at any worker
//! count — while holding at most `window` completed results in memory.
//!
//! The mechanism: jobs are sorted by key up front and workers claim
//! indices from an atomic cursor, so index order *is* key order. A
//! worker that finishes job `i` parks it in an ordered buffer; the
//! caller's thread drains the buffer strictly in index order, handing
//! each result to the sink. Workers that run more than `window` jobs
//! ahead of the drain point block on a condvar until the sink catches
//! up — that back-pressure is what bounds memory. Deadlock-free because
//! indices are claimed in order: the job at the drain point is always
//! held by a worker inside the window, so it can always complete.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use super::RunnerConfig;

/// Memory-behavior report from [`run_keyed_streaming`]: the counting
/// evidence that the merge stayed bounded (asserted by tests instead of
/// OS RSS, which measures the allocator, not the algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Jobs executed (and results delivered to the sink).
    pub total: usize,
    /// Maximum number of completed-but-undelivered results buffered at
    /// any instant. Never exceeds the requested window.
    pub peak_buffered: usize,
}

/// Completed-result staging shared between workers and the draining
/// caller thread.
struct Shared<T> {
    /// Completed results waiting for the drain point, keyed by job
    /// index. Size is bounded by the window.
    done: BTreeMap<usize, T>,
    /// Next job index the sink will consume.
    next_emit: usize,
    /// High-water mark of `done.len()`.
    peak: usize,
}

/// Runs keyed jobs on a worker pool, feeding each `(key, result)` to
/// `sink` in ascending key order **without materializing the result
/// vector**. At most `window` completed results are buffered; workers
/// block once they get that far ahead of the sink.
///
/// Equal keys are delivered in submission order (stable pre-sort), and
/// the sink observes the exact same sequence at any worker count — the
/// streaming analogue of [`super::run_keyed`]'s bit-identical merge.
/// The sink runs on the caller's thread.
///
/// # Panics
///
/// Panics if `window` is zero, or if a job closure panics (workers
/// propagate the panic when the scope joins).
pub fn run_keyed_streaming<K, T, F, S>(
    config: &RunnerConfig,
    mut jobs: Vec<(K, F)>,
    window: usize,
    mut sink: S,
) -> StreamStats
where
    K: Ord + Send,
    T: Send,
    F: FnOnce() -> T + Send,
    S: FnMut(K, T),
{
    assert!(window > 0, "window must be at least 1");
    // Stable sort: ascending key, ties in submission order — identical
    // to run_keyed, so index order is delivery order.
    jobs.sort_by(|a, b| a.0.cmp(&b.0));
    let total = jobs.len();
    let workers = config.effective_jobs().min(total.max(1));

    if workers <= 1 || total <= 1 {
        // Serial path: execute and deliver one result at a time.
        for (k, f) in jobs {
            sink(k, f());
        }
        return StreamStats {
            total,
            peak_buffered: total.min(1),
        };
    }

    let mut keys = Vec::with_capacity(total);
    let mut fns = Vec::with_capacity(total);
    for (k, f) in jobs {
        keys.push(k);
        fns.push(f);
    }

    let tasks: Vec<Mutex<Option<F>>> = fns.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let cursor = AtomicUsize::new(0);
    let shared = Mutex::new(Shared::<T> {
        done: BTreeMap::new(),
        next_emit: 0,
        peak: 0,
    });
    // Workers wait on `space` for the sink to open the window; the
    // caller waits on `ready` for the next in-order result.
    let space = Condvar::new();
    let ready = Condvar::new();

    let mut keys_iter = keys.into_iter();
    let mut peak = 0usize;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                // Back-pressure: don't run further than `window` ahead
                // of the drain point. Because indices are claimed in
                // order, every index below `i` is already claimed, so
                // the drain point always belongs to an unblocked
                // worker (i < next_emit + window holds for it).
                {
                    let mut st = shared.lock().expect("stream state");
                    while i >= st.next_emit + window {
                        st = space.wait(st).expect("stream state");
                    }
                }
                let f = tasks[i]
                    .lock()
                    .expect("task mutex")
                    .take()
                    .expect("each job is taken exactly once");
                let out = f();
                let mut st = shared.lock().expect("stream state");
                st.done.insert(i, out);
                st.peak = st.peak.max(st.done.len());
                drop(st);
                ready.notify_one();
            });
        }

        // Drain on the caller's thread: deliver results strictly in
        // index (= key) order as they become available.
        for expect in 0..total {
            let value = {
                let mut st = shared.lock().expect("stream state");
                loop {
                    if let Some(v) = st.done.remove(&expect) {
                        st.next_emit = expect + 1;
                        break v;
                    }
                    st = ready.wait(st).expect("stream state");
                }
            };
            // The window moved: wake any workers parked on it.
            space.notify_all();
            let key = keys_iter.next().expect("one key per job");
            sink(key, value);
        }

        peak = shared.lock().expect("stream state").peak;
    });

    StreamStats {
        total,
        peak_buffered: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Key = (u32, u32);

    fn jobs_of(n: u32) -> Vec<(Key, impl FnOnce() -> u64 + Send)> {
        (0..n)
            .map(|i| {
                let key = (i % 7, i / 7);
                (key, move || u64::from(i) * 3 + 1)
            })
            .collect()
    }

    fn expected(n: u32) -> Vec<(Key, u64)> {
        let mut want: Vec<(Key, u64)> = (0..n)
            .map(|i| ((i % 7, i / 7), u64::from(i) * 3 + 1))
            .collect();
        want.sort_by_key(|&(k, _)| k);
        want
    }

    #[test]
    fn sink_sees_key_order_at_any_worker_count() {
        for workers in [1, 2, 4, 8] {
            let cfg = RunnerConfig::default().with_jobs(workers);
            let mut got = Vec::new();
            let stats = run_keyed_streaming(&cfg, jobs_of(100), 8, |k, v| got.push((k, v)));
            assert_eq!(got, expected(100), "workers={workers}");
            assert_eq!(stats.total, 100);
        }
    }

    #[test]
    fn counting_sink_proves_bounded_buffer() {
        // The bounded-RSS acceptance check: a counting sink (not OS
        // RSS) pins the peak number of materialized results.
        let cfg = RunnerConfig::default().with_jobs(4);
        let window = 8;
        let mut delivered = 0usize;
        let stats = run_keyed_streaming(&cfg, jobs_of(1000), window, |_, _| delivered += 1);
        assert_eq!(delivered, 1000);
        assert!(
            stats.peak_buffered <= window,
            "peak {} exceeded window {window}",
            stats.peak_buffered
        );
        assert!(stats.peak_buffered >= 1);
    }

    #[test]
    fn serial_path_buffers_at_most_one() {
        let cfg = RunnerConfig::serial();
        let mut got = Vec::new();
        let stats = run_keyed_streaming(&cfg, jobs_of(20), 4, |k, v| got.push((k, v)));
        assert_eq!(got, expected(20));
        assert_eq!(stats.peak_buffered, 1);
    }

    #[test]
    fn window_of_one_still_completes() {
        // The tightest window degenerates to lock-step delivery but
        // must neither deadlock nor reorder.
        let cfg = RunnerConfig::default().with_jobs(4);
        let mut got = Vec::new();
        let stats = run_keyed_streaming(&cfg, jobs_of(50), 1, |k, v| got.push((k, v)));
        assert_eq!(got, expected(50));
        assert_eq!(stats.peak_buffered, 1);
    }

    #[test]
    fn empty_job_set_is_fine() {
        let cfg = RunnerConfig::default().with_jobs(4);
        let jobs: Vec<(Key, fn() -> u64)> = Vec::new();
        let stats = run_keyed_streaming(&cfg, jobs, 8, |_, _| unreachable!());
        assert_eq!(stats.total, 0);
        assert_eq!(stats.peak_buffered, 0);
    }

    #[test]
    fn equal_keys_keep_submission_order() {
        let cfg = RunnerConfig::default().with_jobs(4);
        let jobs: Vec<(Key, _)> = (0..32u64).map(|i| ((0, 0), move || i)).collect();
        let mut got = Vec::new();
        run_keyed_streaming(&cfg, jobs, 4, |_, v| got.push(v));
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }
}
