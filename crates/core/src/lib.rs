//! # h3cdn — reproducing *Dissecting the Applicability of HTTP/3 in CDNs*
//!
//! This crate is the public face of a full reproduction of the ICDCS 2024
//! measurement study. It exposes the study's methodology as an API: build
//! a calibrated page corpus, visit every page over H2 and H3 from three
//! vantage points through packet-level protocol simulations, and run the
//! paper's analyses — adoption tables, CCDFs, quartile-grouped PLT
//! reductions, consecutive-visit resumption, k-means sharing groups, and
//! loss sweeps.
//!
//! ## Quickstart
//!
//! ```
//! use h3cdn::{CampaignConfig, MeasurementCampaign};
//!
//! // A small campaign (10 pages) for illustration; the paper-scale
//! // default is 325 pages.
//! let campaign = MeasurementCampaign::new(CampaignConfig::small(10, 7));
//! let cmp = campaign.compare_page(0, h3cdn::Vantage::Utah);
//! assert!(cmp.plt_reduction_ms.is_finite());
//! ```
//!
//! ## Layer map
//!
//! | crate | role |
//! |---|---|
//! | `h3cdn-sim-core` | deterministic time, events, RNG |
//! | `h3cdn-netsim` | packet-level links, loss, engine |
//! | `h3cdn-transport` | TCP, TLS, QUIC state machines |
//! | `h3cdn-http` | H1/H2/H3 clients and servers |
//! | `h3cdn-cdn` | providers, vantages, LocEdge |
//! | `h3cdn-web` | calibrated page corpus |
//! | `h3cdn-browser` | page loads, HAR emission |
//! | `h3cdn-har` | HAR records, reduction metrics |
//! | `h3cdn-analysis` | CDF/CCDF, k-means, OLS |
//!
//! Every experiment of the paper has a regenerator in the
//! `h3cdn-experiments` crate (one module per table/figure, sitting
//! above this crate and `h3cdn-analysis` in the layer map); its
//! binaries print the same rows/series the paper's tables and figures
//! report.

pub mod campaign;
pub mod persist;
pub mod runner;
pub mod selector;

pub use campaign::{CampaignConfig, MeasurementCampaign};
pub use persist::shard::ShardedJournal;
pub use persist::{atomic_write, Fingerprint, Manifest, RunDir};
pub use runner::durable::{DurableContext, JobFailure, JobMeta, RetryPolicy};
pub use runner::streaming::{run_keyed_streaming, StreamStats};
pub use runner::{run_keyed, run_keyed_values, RunnerConfig};

pub use h3cdn_browser as browser;
pub use h3cdn_cdn as cdn;
pub use h3cdn_har as har;
pub use h3cdn_http as http;
pub use h3cdn_netsim as netsim;
pub use h3cdn_sim_core as sim_core;
pub use h3cdn_transport as transport;
pub use h3cdn_web as web;

pub use h3cdn_browser::{ProtocolMode, VisitConfig};
pub use h3cdn_cdn::{Provider, Vantage};
pub use h3cdn_har::PageComparison;
pub use h3cdn_web::WorkloadSpec;

// The parallel runner borrows the campaign from every worker thread;
// these compile-time assertions keep that contract explicit.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CampaignConfig>();
    assert_send_sync::<MeasurementCampaign>();
    assert_send_sync::<RunnerConfig>();
};
