//! Deterministic parallel job executor for measurement campaigns.
//!
//! Every paired H2/H3 visit in this reproduction is a pure function of
//! `(WorkloadSpec, seed, vantage, VisitConfig)`, which makes campaigns
//! embarrassingly parallel. This module models campaign work as *keyed
//! jobs* — a totally ordered `JobKey` plus a closure producing a
//! result — executes them on a [`std::thread::scope`] worker pool, and
//! merges results **in key order**, so the output of every campaign API
//! is bit-identical to the serial path regardless of worker count.
//!
//! Worker count resolution, in priority order:
//!
//! 1. an explicit [`RunnerConfig::with_jobs`] / `--jobs` CLI flag,
//! 2. the `H3CDN_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Long sweeps get lightweight observability: with
//! [`RunnerConfig::quiet`](RunnerConfig) unset (`--progress` /
//! `H3CDN_PROGRESS=1`), the runner prints jobs-done and throughput
//! counters to stderr. Progress output never touches stdout, so
//! rendered artifacts stay byte-stable either way.

pub mod durable;
pub mod streaming;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once};
use std::time::Instant;

/// Key identifying one campaign job: `(vantage, site, variant)`.
///
/// `variant` distinguishes sub-measurements of the same page — the
/// protocol side of a paired visit, a sweep setting, a repeat index.
/// The lexicographic tuple `Ord` is the runner's merge order.
#[cfg(test)]
pub(crate) type JobKey = (u32, u32, u32);

/// Configuration of the parallel runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Worker threads; `0` means auto-detect (`H3CDN_JOBS` env var if
    /// set, otherwise [`std::thread::available_parallelism`]).
    pub jobs: usize,
    /// Suppress progress/throughput counters (the default; campaigns
    /// enable them via `--progress` or `H3CDN_PROGRESS=1`).
    pub quiet: bool,
}

impl Default for RunnerConfig {
    /// Auto worker count, quiet.
    fn default() -> Self {
        RunnerConfig {
            jobs: 0,
            quiet: true,
        }
    }
}

impl RunnerConfig {
    /// Strictly serial execution (one worker, in-thread).
    pub fn serial() -> Self {
        RunnerConfig {
            jobs: 1,
            quiet: true,
        }
    }

    /// Returns a copy pinned to `jobs` workers (`0` = auto).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Returns a copy with progress counters switched on or off.
    pub fn with_quiet(mut self, quiet: bool) -> Self {
        self.quiet = quiet;
        self
    }

    /// Resolves `jobs`/`quiet` from the environment: `H3CDN_JOBS` for
    /// the worker count, `H3CDN_PROGRESS=1` to enable counters.
    pub fn from_env() -> Self {
        let jobs = jobs_from_env();
        let quiet = !matches!(
            // h3cdn-lint: allow(env-read)
            std::env::var("H3CDN_PROGRESS").as_deref(),
            Ok("1") | Ok("true")
        );
        RunnerConfig { jobs, quiet }
    }

    /// The concrete worker count this configuration resolves to.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            return self.jobs;
        }
        let jobs = jobs_from_env();
        if jobs > 0 {
            return jobs;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// Parses an `H3CDN_JOBS` value: a non-negative integer worker count
/// (`0` = auto-detect). Whitespace is trimmed; an empty string counts
/// as unset. Anything else is an error naming the offending value.
fn parse_jobs(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(0);
    }
    trimmed
        .parse::<usize>()
        .map_err(|_| format!("invalid H3CDN_JOBS value {raw:?} (expected a non-negative integer)"))
}

/// Reads `H3CDN_JOBS`, returning `0` (auto) when unset. A value that
/// fails to parse — `H3CDN_JOBS=fuor` — used to degrade silently to
/// auto-detect; now it warns on stderr (once per process) and then
/// falls back, so a typo leaves a visible signal without aborting a
/// long campaign.
fn jobs_from_env() -> usize {
    // Worker count changes scheduling only, never results (the merge is
    // key-ordered). h3cdn-lint: allow(env-read)
    let Ok(raw) = std::env::var("H3CDN_JOBS") else {
        return 0;
    };
    match parse_jobs(&raw) {
        Ok(jobs) => jobs,
        Err(msg) => {
            static WARN_ONCE: Once = Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!("h3cdn runner: {msg}; using auto-detect");
            });
            0
        }
    }
}

/// Runs keyed jobs on a scoped worker pool and returns `(key, result)`
/// pairs sorted by key.
///
/// Execution order is arbitrary (workers race over an atomic cursor);
/// **merge order is total and stable**: results come back in ascending
/// key order, with equal keys kept in submission order. With pure job
/// closures the output is therefore identical for any worker count,
/// including `1` (which runs inline without spawning).
pub fn run_keyed<K, T, F>(config: &RunnerConfig, mut jobs: Vec<(K, F)>) -> Vec<(K, T)>
where
    K: Ord + Send,
    T: Send,
    F: FnOnce() -> T + Send,
{
    // Stable sort: ascending key, ties by submission order. Sorting
    // *before* execution makes the merge order independent of both the
    // worker count and any scheduling race.
    jobs.sort_by(|a, b| a.0.cmp(&b.0));
    let total = jobs.len();
    let workers = config.effective_jobs().min(total.max(1));

    let mut keys = Vec::with_capacity(total);
    let mut fns = Vec::with_capacity(total);
    for (k, f) in jobs {
        keys.push(k);
        fns.push(f);
    }

    // Wall-clock is used for the jobs/s progress line on stderr only;
    // it never feeds into simulated time or results.
    // h3cdn-lint: allow(wall-clock)
    let started = Instant::now();
    let results: Vec<T> = if workers <= 1 || total <= 1 {
        fns.into_iter().map(|f| f()).collect()
    } else {
        execute_parallel(config, fns, workers, &started)
    };

    if !config.quiet {
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        eprintln!(
            "h3cdn runner: {total} jobs on {workers} worker(s) in {secs:.2}s \
             ({:.1} jobs/s)",
            total as f64 / secs
        );
    }

    keys.into_iter().zip(results).collect()
}

/// As [`run_keyed`], discarding keys: results in key order.
pub fn run_keyed_values<K, T, F>(config: &RunnerConfig, jobs: Vec<(K, F)>) -> Vec<T>
where
    K: Ord + Send,
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_keyed(config, jobs)
        .into_iter()
        .map(|(_, v)| v)
        .collect()
}

/// Worker-pool execution: an atomic cursor hands each slot index to
/// exactly one worker; results land in per-slot cells, preserving the
/// sorted job order irrespective of completion order.
fn execute_parallel<T, F>(
    config: &RunnerConfig,
    fns: Vec<F>,
    workers: usize,
    started: &Instant,
) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let total = fns.len();
    let tasks: Vec<Mutex<Option<F>>> = fns.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let progress_every = (total / 10).max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let f = tasks[i]
                    .lock()
                    .expect("task mutex")
                    .take()
                    .expect("each job is taken exactly once");
                let out = f();
                *slots[i].lock().expect("slot mutex") = Some(out);
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                if !config.quiet && (d.is_multiple_of(progress_every) || d == total) {
                    let secs = started.elapsed().as_secs_f64().max(1e-9);
                    eprintln!(
                        "h3cdn runner: {d}/{total} jobs done ({:.1} jobs/s)",
                        d as f64 / secs
                    );
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot mutex")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_jobs(keys: &[JobKey]) -> Vec<(JobKey, impl FnOnce() -> JobKey + Send)> {
        keys.iter().map(|&k| (k, move || k)).collect()
    }

    #[test]
    fn results_come_back_in_key_order() {
        let keys = [(2, 0, 1), (0, 5, 0), (1, 1, 1), (0, 0, 0), (2, 0, 0)];
        for jobs in [1, 2, 8] {
            let cfg = RunnerConfig::default().with_jobs(jobs);
            let out = run_keyed(&cfg, identity_jobs(&keys));
            let got: Vec<JobKey> = out.iter().map(|(k, _)| *k).collect();
            let mut want = keys.to_vec();
            want.sort_unstable();
            assert_eq!(got, want, "jobs={jobs}");
            for (k, v) in out {
                assert_eq!(k, v);
            }
        }
    }

    #[test]
    fn equal_keys_keep_submission_order() {
        // Jobs with the same key carry distinct payloads; the stable
        // sort must keep them in submission order under any worker
        // count.
        for jobs in [1, 4] {
            let cfg = RunnerConfig::default().with_jobs(jobs);
            let submitted: Vec<((u32, u32, u32), _)> =
                (0..16u32).map(|i| ((0, 0, 0), move || i)).collect();
            let out = run_keyed_values(&cfg, submitted);
            assert_eq!(out, (0..16).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_job_sets_work() {
        let cfg = RunnerConfig::default().with_jobs(8);
        let empty: Vec<(JobKey, fn() -> u32)> = Vec::new();
        assert!(run_keyed(&cfg, empty).is_empty());
        let one = vec![((1, 2, 3), || 42u32)];
        assert_eq!(run_keyed_values(&cfg, one), vec![42]);
    }

    #[test]
    fn worker_count_exceeding_jobs_is_fine() {
        let cfg = RunnerConfig::default().with_jobs(64);
        let out = run_keyed_values(&cfg, identity_jobs(&[(0, 0, 0), (0, 1, 0)]));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn serial_config_is_one_worker() {
        assert_eq!(RunnerConfig::serial().effective_jobs(), 1);
        assert!(RunnerConfig::serial().quiet);
    }

    #[test]
    fn explicit_jobs_override_everything() {
        assert_eq!(RunnerConfig::default().with_jobs(5).effective_jobs(), 5);
    }

    #[test]
    fn auto_jobs_resolve_to_at_least_one() {
        assert!(RunnerConfig::default().effective_jobs() >= 1);
    }

    #[test]
    fn parse_jobs_accepts_integers_and_rejects_garbage() {
        // Tested via the pure parser rather than the env var to avoid
        // process-global races with parallel tests.
        assert_eq!(parse_jobs("4"), Ok(4));
        assert_eq!(parse_jobs(" 2 "), Ok(2));
        assert_eq!(parse_jobs("0"), Ok(0));
        assert_eq!(parse_jobs(""), Ok(0));
        assert_eq!(parse_jobs("   "), Ok(0));
        let err = parse_jobs("fuor").unwrap_err();
        assert!(err.contains("fuor"), "error names the value: {err}");
        assert!(parse_jobs("-1").is_err());
        assert!(parse_jobs("4.5").is_err());
    }
}
