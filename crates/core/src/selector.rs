//! Adaptive protocol selection — the extension the paper's §VII
//! recommends researchers build: "an adaptive protocol selection tool
//! that adjusts flexibly based on different conditions".
//!
//! [`ProtocolSelector`] observes per-page conditions (reused-connection
//! potential, loss, resource counts) and predicts which protocol mode
//! will load the page faster, using the paper's own findings as rules:
//!
//! * Takeaway 2 — heavily reused H2 pools shrink H3's room (the Fig. 6a
//!   turning point);
//! * Takeaway 4 — many CDN resources + loss favour H3's multiplexing;
//! * §VI-B — H3's fast connection favours pages with many cold domains.

use h3cdn_browser::ProtocolMode;
use h3cdn_web::Webpage;
use serde::Serialize;

/// Observable conditions for one prospective page load.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PageConditions {
    /// CDN resources on the page.
    pub cdn_resources: usize,
    /// Resources that can go over H3.
    pub h3_enabled: usize,
    /// Distinct domains to contact (cold handshakes needed).
    pub distinct_domains: usize,
    /// Estimated path loss rate, percent.
    pub loss_percent: f64,
}

impl PageConditions {
    /// Derives conditions from a corpus page and an assumed loss rate.
    pub fn from_page(page: &Webpage, loss_percent: f64) -> Self {
        PageConditions {
            cdn_resources: page.cdn_resources().count(),
            h3_enabled: page.h3_enabled_cdn_count(),
            distinct_domains: page.cdn_domains().len() + 1,
            loss_percent,
        }
    }
}

/// A rule-based protocol selector derived from the paper's takeaways.
#[derive(Debug, Clone, Serialize)]
pub struct ProtocolSelector {
    /// Minimum H3-enabled share below which switching is not worth the
    /// split-connection cost (Fig. 7's reuse gap).
    pub min_h3_share: f64,
    /// Loss (percent) beyond which H3 is chosen regardless of share
    /// (Fig. 9's slopes).
    pub loss_override_percent: f64,
}

impl Default for ProtocolSelector {
    fn default() -> Self {
        ProtocolSelector {
            min_h3_share: 0.05,
            loss_override_percent: 0.4,
        }
    }
}

impl ProtocolSelector {
    /// Picks the mode predicted to load faster under `conditions`.
    pub fn select(&self, conditions: &PageConditions) -> ProtocolMode {
        if conditions.loss_percent >= self.loss_override_percent && conditions.h3_enabled > 0 {
            // Takeaway 4: under loss, stream multiplexing dominates.
            return ProtocolMode::H3Enabled;
        }
        let share = if conditions.cdn_resources == 0 {
            0.0
        } else {
            conditions.h3_enabled as f64 / conditions.cdn_resources as f64
        };
        if share < self.min_h3_share && conditions.distinct_domains > 2 {
            // Takeaway 2's turning point: near-zero H3 coverage on a
            // multi-domain page only splits pools. (The root document
            // still benefits, so the bar is deliberately low.)
            ProtocolMode::H2Only
        } else {
            ProtocolMode::H3Enabled
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(cdn: usize, h3: usize, domains: usize, loss: f64) -> PageConditions {
        PageConditions {
            cdn_resources: cdn,
            h3_enabled: h3,
            distinct_domains: domains,
            loss_percent: loss,
        }
    }

    #[test]
    fn loss_forces_h3() {
        let s = ProtocolSelector::default();
        assert_eq!(
            s.select(&cond(50, 2, 8, 1.0)),
            ProtocolMode::H3Enabled,
            "lossy multi-resource pages take H3"
        );
    }

    #[test]
    fn zero_h3_coverage_on_clean_paths_stays_h2() {
        let s = ProtocolSelector::default();
        assert_eq!(s.select(&cond(60, 0, 9, 0.0)), ProtocolMode::H2Only);
    }

    #[test]
    fn typical_pages_choose_h3() {
        let s = ProtocolSelector::default();
        assert_eq!(s.select(&cond(60, 25, 9, 0.0)), ProtocolMode::H3Enabled);
    }

    #[test]
    fn from_page_derives_counts() {
        let corpus = h3cdn_web::generate(&h3cdn_web::WorkloadSpec::default().with_pages(2));
        let c = PageConditions::from_page(&corpus.pages[0], 0.5);
        assert_eq!(c.cdn_resources, corpus.pages[0].cdn_resources().count());
        assert!(c.distinct_domains >= 2);
    }
}
