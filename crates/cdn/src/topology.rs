//! Vantage points and edge RTT profiles.
//!
//! The study probes from three CloudLab sites. Each vantage sees each
//! provider's nearest edge at a characteristic RTT: the giants run dense
//! anycast edges (single-digit to low-double-digit milliseconds), the
//! aggregated tail and origin servers sit farther away. Values are
//! representative US-interior latencies; experiments average across
//! vantages exactly as the paper does.

use h3cdn_sim_core::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

use crate::provider::Provider;

/// A measurement vantage point (CloudLab site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vantage {
    /// University of Utah.
    Utah,
    /// University of Wisconsin–Madison.
    Wisconsin,
    /// Clemson University.
    Clemson,
}

impl Vantage {
    /// All three vantages, in the paper's order.
    pub const ALL: [Vantage; 3] = [Vantage::Utah, Vantage::Wisconsin, Vantage::Clemson];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Vantage::Utah => "Utah",
            Vantage::Wisconsin => "Wisconsin",
            Vantage::Clemson => "Clemson",
        }
    }

    /// Base round-trip time from this vantage to `provider`'s nearest
    /// edge.
    pub fn edge_rtt(self, provider: Provider) -> SimDuration {
        let ms = match (self, provider) {
            // Dense anycast giants: close everywhere.
            (Vantage::Utah, Provider::Google) => 8,
            (Vantage::Wisconsin, Provider::Google) => 10,
            (Vantage::Clemson, Provider::Google) => 14,
            (Vantage::Utah, Provider::Cloudflare) => 10,
            (Vantage::Wisconsin, Provider::Cloudflare) => 9,
            (Vantage::Clemson, Provider::Cloudflare) => 12,
            (Vantage::Utah, Provider::Fastly) => 12,
            (Vantage::Wisconsin, Provider::Fastly) => 11,
            (Vantage::Clemson, Provider::Fastly) => 16,
            (Vantage::Utah, Provider::Akamai) => 14,
            (Vantage::Wisconsin, Provider::Akamai) => 12,
            (Vantage::Clemson, Provider::Akamai) => 15,
            (Vantage::Utah, Provider::Amazon) => 16,
            (Vantage::Wisconsin, Provider::Amazon) => 14,
            (Vantage::Clemson, Provider::Amazon) => 18,
            (Vantage::Utah, Provider::Microsoft) => 18,
            (Vantage::Wisconsin, Provider::Microsoft) => 16,
            (Vantage::Clemson, Provider::Microsoft) => 20,
            (Vantage::Utah, Provider::QuicCloud) => 24,
            (Vantage::Wisconsin, Provider::QuicCloud) => 22,
            (Vantage::Clemson, Provider::QuicCloud) => 26,
            // Sparse tail providers: noticeably farther.
            (Vantage::Utah, Provider::Other) => 42,
            (Vantage::Wisconsin, Provider::Other) => 38,
            (Vantage::Clemson, Provider::Other) => 46,
        };
        SimDuration::from_millis(ms)
    }

    /// Base round-trip time from this vantage to a website's origin
    /// server (non-CDN resources and the root HTML). Origins are single-
    /// homed, so they sit much farther than any edge.
    pub fn origin_rtt_base(self) -> SimDuration {
        SimDuration::from_millis(match self {
            Vantage::Utah => 60,
            Vantage::Wisconsin => 55,
            Vantage::Clemson => 65,
        })
    }

    /// Samples a concrete origin RTT for one website: base plus a
    /// site-specific spread (origins are scattered across the Internet).
    pub fn sample_origin_rtt(self, rng: &mut SimRng) -> SimDuration {
        let extra_ms = rng.range_f64(0.0, 60.0);
        self.origin_rtt_base() + SimDuration::from_millis_f64(extra_ms)
    }

    /// Samples per-path jitter to add to an edge RTT (±20 %).
    pub fn jitter(rtt: SimDuration, rng: &mut SimRng) -> SimDuration {
        rtt.mul_f64(rng.range_f64(0.8, 1.2))
    }
}

impl std::fmt::Display for Vantage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn giants_closer_than_tail_everywhere() {
        for v in Vantage::ALL {
            for giant in Provider::GIANTS {
                assert!(
                    v.edge_rtt(giant) < v.edge_rtt(Provider::Other),
                    "{giant} should be closer than the tail from {v}"
                );
            }
        }
    }

    #[test]
    fn origins_farther_than_edges() {
        for v in Vantage::ALL {
            for p in Provider::ALL {
                assert!(
                    v.origin_rtt_base() > v.edge_rtt(p),
                    "origin must be farther than {p} edge from {v}"
                );
            }
        }
    }

    #[test]
    fn origin_sampling_is_bounded_and_deterministic() {
        let mut a = SimRng::seed_from(5);
        let mut b = SimRng::seed_from(5);
        for _ in 0..100 {
            let ra = Vantage::Utah.sample_origin_rtt(&mut a);
            let rb = Vantage::Utah.sample_origin_rtt(&mut b);
            assert_eq!(ra, rb);
            assert!(ra >= Vantage::Utah.origin_rtt_base());
            assert!(ra <= Vantage::Utah.origin_rtt_base() + SimDuration::from_millis(60));
        }
    }

    #[test]
    fn jitter_stays_within_twenty_percent() {
        let mut rng = SimRng::seed_from(6);
        let base = SimDuration::from_millis(10);
        for _ in 0..1000 {
            let j = Vantage::jitter(base, &mut rng);
            assert!(j >= SimDuration::from_millis(8));
            assert!(j <= SimDuration::from_millis(12));
        }
    }

    #[test]
    fn names_unique() {
        let names: Vec<&str> = Vantage::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names, vec!["Utah", "Wisconsin", "Clemson"]);
    }
}
