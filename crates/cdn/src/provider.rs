//! The CDN provider universe and its calibrated profiles.
//!
//! Calibration targets, all taken from the paper:
//!
//! * Table II: 67 % of requests are CDN; H3 carries 25.8 % of all requests
//!   among CDN resources and 6.8 % among non-CDN; "Others" (H1.x) is
//!   6.2 %, almost entirely non-CDN.
//! * Fig. 2: Google serves ≈ 50 % of H3-enabled CDN requests with near-
//!   total H3 adoption; Cloudflare ≈ 45 % with roughly even H3/H2 split;
//!   Amazon, Fastly and the rest are primarily H2.
//! * Table I: release years and provider performance reports.
//!
//! With the shares below, the expected H3 fraction among CDN requests is
//! `Σ share·adoption ≈ 0.385`, i.e. 25.8 % of all requests at 67 % CDN
//! share — matching Table II — and Google/Cloudflare take 50.4 % / 44.2 %
//! of H3 CDN requests, matching Fig. 2.

use serde::{Deserialize, Serialize};

/// A CDN service provider observed in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Provider {
    /// Google Cloud CDN (and Google-operated CDN infrastructure).
    Google,
    /// Cloudflare.
    Cloudflare,
    /// Amazon CloudFront.
    Amazon,
    /// Fastly.
    Fastly,
    /// Akamai.
    Akamai,
    /// Microsoft Azure CDN.
    Microsoft,
    /// QUIC.cloud (LiteSpeed).
    QuicCloud,
    /// Long tail of smaller providers, aggregated.
    Other,
}

impl Provider {
    /// All providers, in registry order.
    pub const ALL: [Provider; 8] = [
        Provider::Google,
        Provider::Cloudflare,
        Provider::Amazon,
        Provider::Fastly,
        Provider::Akamai,
        Provider::Microsoft,
        Provider::QuicCloud,
        Provider::Other,
    ];

    /// The four giants examined in the paper's Fig. 5.
    pub const GIANTS: [Provider; 4] = [
        Provider::Amazon,
        Provider::Cloudflare,
        Provider::Google,
        Provider::Fastly,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Provider::Google => "Google",
            Provider::Cloudflare => "Cloudflare",
            Provider::Amazon => "Amazon",
            Provider::Fastly => "Fastly",
            Provider::Akamai => "Akamai",
            Provider::Microsoft => "Microsoft",
            Provider::QuicCloud => "QUIC.Cloud",
            Provider::Other => "Other",
        }
    }
}

impl std::fmt::Display for Provider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Calibrated, per-provider parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProviderProfile {
    /// The provider.
    pub provider: Provider,
    /// Share of CDN requests this provider serves (sums to 1 across the
    /// registry).
    pub market_share: f64,
    /// Probability that a resource hosted here is reachable over H3.
    pub h3_adoption: f64,
    /// Probability a TCP connection to this provider negotiates TLS 1.2
    /// rather than 1.3 (older edges).
    pub tls12_share: f64,
    /// Year the provider released H3 support (Table I); `None` for the
    /// aggregated tail.
    pub h3_release_year: Option<u16>,
    /// The provider's own published performance report (Table I).
    pub performance_report: &'static str,
    /// Mean number of distinct hostnames this provider contributes to a
    /// page that uses it (shared CDN domains like fonts.googleapis.com
    /// keep this small).
    pub mean_domains_per_page: f64,
}

/// The calibrated provider registry.
#[derive(Debug, Clone)]
pub struct ProviderRegistry {
    profiles: Vec<ProviderProfile>,
}

impl ProviderRegistry {
    /// Builds the registry with the paper-calibrated defaults.
    pub fn paper_calibrated() -> Self {
        let profiles = vec![
            ProviderProfile {
                provider: Provider::Google,
                market_share: 0.20,
                h3_adoption: 0.97,
                tls12_share: 0.02,
                h3_release_year: Some(2021),
                performance_report: "Reduce search latency by 2%, video rebuffer times by 9%, \
                                     and improve mobile device throughput by 7%",
                mean_domains_per_page: 2.2,
            },
            ProviderProfile {
                provider: Provider::Cloudflare,
                market_share: 0.34,
                h3_adoption: 0.55,
                tls12_share: 0.05,
                h3_release_year: Some(2019),
                performance_report: "H3 performs 12.4% better in TTFB, but 1-4% worse in PLT \
                                     than H2",
                mean_domains_per_page: 1.8,
            },
            ProviderProfile {
                provider: Provider::Amazon,
                market_share: 0.16,
                h3_adoption: 0.03,
                tls12_share: 0.25,
                h3_release_year: Some(2022),
                performance_report: "N/A",
                mean_domains_per_page: 1.6,
            },
            ProviderProfile {
                provider: Provider::Fastly,
                market_share: 0.08,
                h3_adoption: 0.04,
                tls12_share: 0.10,
                h3_release_year: Some(2021),
                performance_report: "QUIC can represent an 8% increase in throughput",
                mean_domains_per_page: 1.3,
            },
            ProviderProfile {
                provider: Provider::Akamai,
                market_share: 0.08,
                h3_adoption: 0.10,
                tls12_share: 0.20,
                h3_release_year: Some(2023),
                performance_report: "6.5% enhancement in users with TAT under 25ms; 12.7% \
                                     improvement for requests exceeding 1 Mbps",
                mean_domains_per_page: 1.3,
            },
            ProviderProfile {
                provider: Provider::Microsoft,
                market_share: 0.06,
                h3_adoption: 0.02,
                tls12_share: 0.30,
                h3_release_year: None,
                performance_report: "N/A",
                mean_domains_per_page: 1.2,
            },
            ProviderProfile {
                provider: Provider::QuicCloud,
                market_share: 0.01,
                h3_adoption: 0.85,
                tls12_share: 0.00,
                h3_release_year: Some(2021),
                performance_report: "H3 turns TTFB from 231ms to 24ms",
                mean_domains_per_page: 1.0,
            },
            ProviderProfile {
                provider: Provider::Other,
                market_share: 0.07,
                h3_adoption: 0.02,
                tls12_share: 0.40,
                h3_release_year: None,
                performance_report: "N/A",
                mean_domains_per_page: 1.2,
            },
        ];
        ProviderRegistry { profiles }
    }

    /// Profiles in registry order.
    pub fn profiles(&self) -> &[ProviderProfile] {
        &self.profiles
    }

    /// The profile of one provider.
    ///
    /// # Panics
    ///
    /// Panics if the registry was constructed without this provider
    /// (never the case for [`ProviderRegistry::paper_calibrated`]).
    pub fn profile(&self, provider: Provider) -> &ProviderProfile {
        self.profiles
            .iter()
            .find(|p| p.provider == provider)
            .expect("registry covers all providers")
    }

    /// Market shares aligned with [`ProviderRegistry::profiles`] order,
    /// for weighted sampling.
    pub fn market_shares(&self) -> Vec<f64> {
        self.profiles.iter().map(|p| p.market_share).collect()
    }

    /// Expected H3 fraction among CDN requests:
    /// `Σ market_share · h3_adoption`.
    pub fn expected_cdn_h3_fraction(&self) -> f64 {
        self.profiles
            .iter()
            .map(|p| p.market_share * p.h3_adoption)
            .sum()
    }
}

impl Default for ProviderRegistry {
    fn default() -> Self {
        ProviderRegistry::paper_calibrated()
    }
}

/// Non-CDN (origin web service) calibration: Table II's right-hand
/// column.
pub mod non_cdn {
    /// Probability a non-CDN resource is reachable over H3 (Table II:
    /// 2462 / 11904 ≈ 0.207).
    #[cfg(test)]
    pub(crate) const H3_ADOPTION: f64 = 0.207;
    /// Probability a non-CDN TCP connection negotiates TLS 1.2.
    pub const TLS12_SHARE: f64 = 0.45;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let reg = ProviderRegistry::paper_calibrated();
        let total: f64 = reg.market_shares().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn h3_fraction_matches_table_ii() {
        // Table II: 9280 / 24153 = 38.4 % of CDN requests use H3. The
        // workload layer multiplies domain-level adoption by its 0.95
        // within-domain factor, so the registry-level product targets
        // 0.384 / 0.95 ≈ 0.404.
        let reg = ProviderRegistry::paper_calibrated();
        let f = reg.expected_cdn_h3_fraction() * 0.95;
        assert!((f - 0.384).abs() < 0.01, "CDN H3 fraction {f}");
    }

    #[test]
    fn google_and_cloudflare_dominate_h3_as_in_fig2() {
        let reg = ProviderRegistry::paper_calibrated();
        let total = reg.expected_cdn_h3_fraction();
        let google = reg.profile(Provider::Google);
        let cf = reg.profile(Provider::Cloudflare);
        let g_share = google.market_share * google.h3_adoption / total;
        let cf_share = cf.market_share * cf.h3_adoption / total;
        assert!((g_share - 0.50).abs() < 0.03, "Google H3 share {g_share}");
        assert!(
            (cf_share - 0.452).abs() < 0.03,
            "Cloudflare H3 share {cf_share}"
        );
    }

    #[test]
    fn google_nearly_fully_shifted_cloudflare_split() {
        let reg = ProviderRegistry::paper_calibrated();
        assert!(reg.profile(Provider::Google).h3_adoption > 0.9);
        let cf = reg.profile(Provider::Cloudflare).h3_adoption;
        assert!((cf - 0.5).abs() < 0.1, "Cloudflare H3/H2 comparable: {cf}");
        assert!(reg.profile(Provider::Amazon).h3_adoption < 0.15);
        assert!(reg.profile(Provider::Fastly).h3_adoption < 0.15);
    }

    #[test]
    fn release_years_match_table_i() {
        let reg = ProviderRegistry::paper_calibrated();
        assert_eq!(
            reg.profile(Provider::Cloudflare).h3_release_year,
            Some(2019)
        );
        assert_eq!(reg.profile(Provider::Google).h3_release_year, Some(2021));
        assert_eq!(reg.profile(Provider::Fastly).h3_release_year, Some(2021));
        assert_eq!(reg.profile(Provider::QuicCloud).h3_release_year, Some(2021));
        assert_eq!(reg.profile(Provider::Amazon).h3_release_year, Some(2022));
        assert_eq!(reg.profile(Provider::Akamai).h3_release_year, Some(2023));
    }

    #[test]
    fn non_cdn_calibration_matches_table_ii() {
        // Overall H3 share: 0.67·0.384 + 0.33·0.207 ≈ 0.326 (Table II:
        // 32.6 %).
        let reg = ProviderRegistry::paper_calibrated();
        let overall = 0.67 * reg.expected_cdn_h3_fraction() * 0.95 + 0.33 * non_cdn::H3_ADOPTION;
        assert!((overall - 0.326).abs() < 0.01, "overall H3 {overall}");
    }

    #[test]
    fn display_names() {
        assert_eq!(Provider::QuicCloud.to_string(), "QUIC.Cloud");
        assert_eq!(Provider::Google.name(), "Google");
    }

    #[test]
    fn giants_are_the_fig5_four() {
        assert_eq!(
            Provider::GIANTS,
            [
                Provider::Amazon,
                Provider::Cloudflare,
                Provider::Google,
                Provider::Fastly
            ]
        );
    }
}
