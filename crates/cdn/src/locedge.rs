//! A re-implementation of LocEdge's provider classification.
//!
//! The paper uses LocEdge (Huang et al., SIGCOMM '22 demo) to decide, for
//! each HAR entry, whether the resource came from a CDN and which provider
//! served it. LocEdge keys on response-header fingerprints — `server:`,
//! `via:`, provider-specific debug headers — plus hostname patterns. Our
//! simulated servers emit the same fingerprints
//! ([`fingerprint_headers`]), and [`classify`] recovers the provider,
//! so the analysis pipeline runs the same decision procedure as the
//! paper's.

use h3cdn_sim_core::SimRng;

use crate::provider::Provider;

/// A response header as `(name, value)`, names lower-case.
pub type Header = (String, String);

/// Emits the fingerprint headers a `provider`-operated edge attaches to
/// responses. `rng` feeds the request-scoped debug tokens (ray ids, pop
/// codes) so values look realistic without being load-bearing.
pub fn fingerprint_headers(provider: Provider, rng: &mut SimRng) -> Vec<Header> {
    let token = rng.next_u64();
    match provider {
        Provider::Google => vec![
            ("server".into(), "gws".into()),
            ("via".into(), "1.1 google".into()),
        ],
        Provider::Cloudflare => vec![
            ("server".into(), "cloudflare".into()),
            ("cf-ray".into(), format!("{token:016x}-SJC")),
            ("cf-cache-status".into(), "HIT".into()),
        ],
        Provider::Amazon => vec![
            ("server".into(), "AmazonS3".into()),
            (
                "via".into(),
                format!("1.1 {token:08x}.cloudfront.net (CloudFront)"),
            ),
            ("x-amz-cf-id".into(), format!("{token:016x}")),
            ("x-amz-cf-pop".into(), "IAD89-C1".into()),
        ],
        Provider::Fastly => vec![
            ("via".into(), "1.1 varnish".into()),
            ("x-served-by".into(), format!("cache-bur-{token:04x}")),
            ("x-cache".into(), "HIT".into()),
        ],
        Provider::Akamai => vec![
            ("server".into(), "AkamaiGHost".into()),
            ("x-akamai-transformed".into(), "9 - 0 pmb=mRUM,1".into()),
        ],
        Provider::Microsoft => vec![
            ("server".into(), "ECAcc".into()),
            ("x-azure-ref".into(), format!("0{token:015x}")),
        ],
        Provider::QuicCloud => vec![
            ("server".into(), "LiteSpeed".into()),
            ("x-qc-pop".into(), format!("US-{token:02x}")),
            ("x-qc-cache".into(), "hit".into()),
        ],
        Provider::Other => vec![
            ("server".into(), "cdn-cache/2.4".into()),
            ("x-cdn".into(), "edgecast-lite".into()),
        ],
    }
}

/// Headers an origin (non-CDN) web server emits — deliberately free of
/// any CDN fingerprint.
pub fn origin_headers() -> Vec<Header> {
    vec![("server".into(), "nginx/1.22.1".into())]
}

/// Classifies a response as CDN-served, returning the provider, or
/// `None` for a non-CDN origin response. `domain` participates as a
/// fallback pattern, exactly as LocEdge uses hostname rules when headers
/// are inconclusive.
pub fn classify(headers: &[Header], domain: &str) -> Option<Provider> {
    let find = |name: &str| -> Option<&str> {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };

    if let Some(server) = find("server") {
        let s = server.to_ascii_lowercase();
        if s.contains("cloudflare") {
            return Some(Provider::Cloudflare);
        }
        if s == "gws" || s.contains("gse") {
            return Some(Provider::Google);
        }
        if s.contains("akamai") {
            return Some(Provider::Akamai);
        }
        if s.contains("ecacc") || s.contains("ecs (") {
            return Some(Provider::Microsoft);
        }
        if s.contains("litespeed") && find("x-qc-pop").is_some() {
            return Some(Provider::QuicCloud);
        }
    }
    if find("x-amz-cf-id").is_some() || find("x-amz-cf-pop").is_some() {
        return Some(Provider::Amazon);
    }
    if let Some(via) = find("via") {
        let v = via.to_ascii_lowercase();
        if v.contains("google") {
            return Some(Provider::Google);
        }
        if v.contains("cloudfront") {
            return Some(Provider::Amazon);
        }
        if v.contains("varnish") && find("x-served-by").is_some() {
            return Some(Provider::Fastly);
        }
    }
    if find("cf-ray").is_some() {
        return Some(Provider::Cloudflare);
    }
    if find("x-azure-ref").is_some() {
        return Some(Provider::Microsoft);
    }
    if find("x-cdn").is_some() {
        return Some(Provider::Other);
    }

    // Hostname fallback rules.
    let d = domain.to_ascii_lowercase();
    if d.ends_with("googleapis.com") || d.ends_with("gstatic.com") || d.ends_with("ggpht.com") {
        return Some(Provider::Google);
    }
    if d.ends_with("cloudfront.net") {
        return Some(Provider::Amazon);
    }
    if d.ends_with("fastly.net") || d.ends_with("fastlylb.net") {
        return Some(Provider::Fastly);
    }
    if d.ends_with("akamaized.net") || d.ends_with("akamaihd.net") {
        return Some(Provider::Akamai);
    }
    if d.ends_with("azureedge.net") {
        return Some(Provider::Microsoft);
    }
    if d.ends_with("cdn.cloudflare.net") {
        return Some(Provider::Cloudflare);
    }
    if d.ends_with("quic.cloud") {
        return Some(Provider::QuicCloud);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_provider_round_trips_through_headers() {
        let mut rng = SimRng::seed_from(1);
        for p in Provider::ALL {
            let headers = fingerprint_headers(p, &mut rng);
            assert_eq!(
                classify(&headers, "static.example.com"),
                Some(p),
                "classification must invert fingerprinting for {p}"
            );
        }
    }

    #[test]
    fn origin_headers_classify_as_non_cdn() {
        assert_eq!(classify(&origin_headers(), "www.example.com"), None);
    }

    #[test]
    fn hostname_fallback_rules() {
        let no_headers: Vec<Header> = vec![];
        assert_eq!(
            classify(&no_headers, "fonts.googleapis.com"),
            Some(Provider::Google)
        );
        assert_eq!(
            classify(&no_headers, "d1234.cloudfront.net"),
            Some(Provider::Amazon)
        );
        assert_eq!(
            classify(&no_headers, "assets.fastly.net"),
            Some(Provider::Fastly)
        );
        assert_eq!(
            classify(&no_headers, "media.akamaized.net"),
            Some(Provider::Akamai)
        );
        assert_eq!(classify(&no_headers, "www.example.org"), None);
    }

    #[test]
    fn classification_is_case_insensitive_on_values() {
        let headers = vec![("server".into(), "CloudFlare".into())];
        assert_eq!(classify(&headers, "x.com"), Some(Provider::Cloudflare));
    }

    #[test]
    fn amazon_detected_by_debug_header_alone() {
        let headers = vec![("x-amz-cf-id".into(), "abc".into())];
        assert_eq!(classify(&headers, "x.com"), Some(Provider::Amazon));
    }

    #[test]
    fn fastly_needs_varnish_and_served_by() {
        // `via: varnish` alone is ambiguous (self-hosted Varnish).
        let ambiguous = vec![("via".into(), "1.1 varnish".into())];
        assert_eq!(classify(&ambiguous, "x.com"), None);
        let fastly = vec![
            ("via".into(), "1.1 varnish".into()),
            ("x-served-by".into(), "cache-bur-1".into()),
        ];
        assert_eq!(classify(&fastly, "x.com"), Some(Provider::Fastly));
    }
}
