//! Edge-server caches.
//!
//! The paper visits each page twice: the first visit pulls resources from
//! origin into the edge cache, the second — the measured one — is served
//! from the warm edge. [`EdgeCache`] reproduces that: a cold lookup costs
//! an origin fetch (added to server processing time), a warm one is free.

use crate::overload::EdgeConfigError;
use h3cdn_sim_core::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Per-edge cache of resource ids, with optional TTL eviction and an
/// optional capacity bound (deterministic FIFO eviction by insertion
/// order — `HashMap` iteration order must never leak into results).
#[derive(Debug, Clone, Default)]
// Modeled CDN component exercised by its unit tests; kept exported
// until the browser fetch path integrates per-edge caching.
// h3cdn-lint: allow(dead-pub)
pub struct EdgeCache {
    cached: HashMap<u64, SimTime>,
    /// Insertion order of live keys, oldest first; each live key appears
    /// exactly once (pushed on first insert, removed on eviction/clear).
    order: VecDeque<u64>,
    ttl: Option<SimDuration>,
    capacity: Option<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl EdgeCache {
    /// Creates a cache whose entries never expire (the paper's popular
    /// resources stay resident).
    pub fn new() -> Self {
        EdgeCache::default()
    }

    /// Creates a cache whose entries expire `ttl` after insertion.
    pub fn with_ttl(ttl: SimDuration) -> Self {
        EdgeCache {
            ttl: Some(ttl),
            ..EdgeCache::default()
        }
    }

    /// Creates a cache bounded to `capacity` entries, evicting the
    /// oldest-inserted entry to make room.
    ///
    /// # Errors
    ///
    /// [`EdgeConfigError::ZeroCacheCapacity`] when `capacity == 0` — a
    /// cache that can hold nothing would turn every lookup into an
    /// origin fetch and is a misconfiguration, not a model.
    pub fn bounded(capacity: usize) -> Result<Self, EdgeConfigError> {
        if capacity == 0 {
            return Err(EdgeConfigError::ZeroCacheCapacity);
        }
        Ok(EdgeCache {
            capacity: Some(capacity),
            ..EdgeCache::default()
        })
    }

    /// Looks up `resource` at time `now`, inserting it on miss. Returns
    /// `true` on a warm hit.
    pub fn lookup_or_fill(&mut self, resource: u64, now: SimTime) -> bool {
        let fresh = match self.cached.get(&resource) {
            Some(&inserted) => match self.ttl {
                Some(ttl) => now <= inserted + ttl,
                None => true,
            },
            None => false,
        };
        if fresh {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.insert(resource, now);
        }
        fresh
    }

    /// Pre-warms the cache with `resource` (the paper's first visit).
    pub fn warm(&mut self, resource: u64, now: SimTime) {
        self.insert(resource, now);
    }

    /// Inserts (or refreshes) an entry, evicting the oldest-inserted
    /// entries beyond the capacity bound.
    fn insert(&mut self, resource: u64, now: SimTime) {
        if self.cached.insert(resource, now).is_none() {
            self.order.push_back(resource);
        }
        if let Some(capacity) = self.capacity {
            while self.cached.len() > capacity {
                // `order` tracks every live key, so this always yields
                // while the map is over capacity.
                let Some(oldest) = self.order.pop_front() else {
                    break;
                };
                self.cached.remove(&oldest);
                self.evictions += 1;
            }
        }
    }

    /// Cache hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops all entries (but keeps hit/miss/eviction counters).
    pub fn clear(&mut self) {
        self.cached.clear();
        self.order.clear();
    }
}

/// Extra processing a cache miss adds: the edge fetches from origin
/// before it can respond. One origin round trip plus origin service time.
pub fn miss_penalty(origin_rtt: SimDuration) -> SimDuration {
    origin_rtt + SimDuration::from_millis(5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn first_lookup_misses_second_hits() {
        let mut cache = EdgeCache::new();
        assert!(!cache.lookup_or_fill(1, at(0)));
        assert!(cache.lookup_or_fill(1, at(10)));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn warm_prefills() {
        let mut cache = EdgeCache::new();
        cache.warm(7, at(0));
        assert!(cache.lookup_or_fill(7, at(1)));
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut cache = EdgeCache::with_ttl(SimDuration::from_millis(100));
        assert!(!cache.lookup_or_fill(1, at(0)));
        assert!(cache.lookup_or_fill(1, at(50)));
        assert!(!cache.lookup_or_fill(1, at(200)), "expired entry re-fills");
        // Re-fill at 200 renews the entry.
        assert!(cache.lookup_or_fill(1, at(250)));
    }

    #[test]
    fn clear_evicts_everything() {
        let mut cache = EdgeCache::new();
        cache.warm(1, at(0));
        cache.clear();
        assert!(!cache.lookup_or_fill(1, at(1)));
    }

    #[test]
    fn bounded_cache_evicts_oldest_insertion_first() {
        let mut cache = EdgeCache::bounded(2).expect("nonzero capacity");
        assert!(!cache.lookup_or_fill(1, at(0)));
        assert!(!cache.lookup_or_fill(2, at(1)));
        assert!(!cache.lookup_or_fill(3, at(2)), "third entry evicts 1");
        assert_eq!(cache.evictions(), 1);
        assert!(!cache.lookup_or_fill(1, at(3)), "1 was evicted, re-fills");
        assert!(cache.lookup_or_fill(3, at(4)), "3 survived");
        assert_eq!(cache.evictions(), 2, "re-filling 1 evicted 2");
    }

    #[test]
    fn bounded_cache_refresh_does_not_duplicate_order() {
        let mut cache = EdgeCache::bounded(2).expect("nonzero capacity");
        cache.warm(1, at(0));
        cache.warm(1, at(1)); // refresh, not a second order entry
        cache.warm(2, at(2));
        cache.warm(3, at(3)); // evicts exactly one entry: 1
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup_or_fill(2, at(4)));
        assert!(cache.lookup_or_fill(3, at(4)));
    }

    #[test]
    fn zero_capacity_is_a_typed_error() {
        assert_eq!(
            EdgeCache::bounded(0).unwrap_err(),
            EdgeConfigError::ZeroCacheCapacity
        );
    }

    #[test]
    fn clear_resets_order_tracking() {
        let mut cache = EdgeCache::bounded(2).expect("nonzero capacity");
        cache.warm(1, at(0));
        cache.warm(2, at(0));
        cache.clear();
        // After clear the bound applies to fresh insertions only; stale
        // order entries must not cause phantom evictions.
        cache.warm(3, at(1));
        cache.warm(4, at(1));
        assert_eq!(cache.evictions(), 0);
        assert!(cache.lookup_or_fill(3, at(2)));
        assert!(cache.lookup_or_fill(4, at(2)));
    }

    #[test]
    fn miss_penalty_scales_with_origin_rtt() {
        let near = miss_penalty(SimDuration::from_millis(20));
        let far = miss_penalty(SimDuration::from_millis(120));
        assert_eq!(far - near, SimDuration::from_millis(100));
    }
}
