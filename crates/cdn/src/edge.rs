//! Edge-server caches.
//!
//! The paper visits each page twice: the first visit pulls resources from
//! origin into the edge cache, the second — the measured one — is served
//! from the warm edge. [`EdgeCache`] reproduces that: a cold lookup costs
//! an origin fetch (added to server processing time), a warm one is free.

use h3cdn_sim_core::{SimDuration, SimTime};
use std::collections::HashMap;

/// Per-edge cache of resource ids, with optional TTL eviction.
#[derive(Debug, Clone, Default)]
// Modeled CDN component exercised by its unit tests; kept exported
// until the browser fetch path integrates per-edge caching.
// h3cdn-lint: allow(dead-pub)
pub struct EdgeCache {
    cached: HashMap<u64, SimTime>,
    ttl: Option<SimDuration>,
    hits: u64,
    misses: u64,
}

impl EdgeCache {
    /// Creates a cache whose entries never expire (the paper's popular
    /// resources stay resident).
    pub fn new() -> Self {
        EdgeCache::default()
    }

    /// Creates a cache whose entries expire `ttl` after insertion.
    pub fn with_ttl(ttl: SimDuration) -> Self {
        EdgeCache {
            ttl: Some(ttl),
            ..EdgeCache::default()
        }
    }

    /// Looks up `resource` at time `now`, inserting it on miss. Returns
    /// `true` on a warm hit.
    pub fn lookup_or_fill(&mut self, resource: u64, now: SimTime) -> bool {
        let fresh = match self.cached.get(&resource) {
            Some(&inserted) => match self.ttl {
                Some(ttl) => now <= inserted + ttl,
                None => true,
            },
            None => false,
        };
        if fresh {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.cached.insert(resource, now);
        }
        fresh
    }

    /// Pre-warms the cache with `resource` (the paper's first visit).
    pub fn warm(&mut self, resource: u64, now: SimTime) {
        self.cached.insert(resource, now);
    }

    /// Cache hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops all entries (but keeps hit/miss counters).
    pub fn clear(&mut self) {
        self.cached.clear();
    }
}

/// Extra processing a cache miss adds: the edge fetches from origin
/// before it can respond. One origin round trip plus origin service time.
pub fn miss_penalty(origin_rtt: SimDuration) -> SimDuration {
    origin_rtt + SimDuration::from_millis(5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn first_lookup_misses_second_hits() {
        let mut cache = EdgeCache::new();
        assert!(!cache.lookup_or_fill(1, at(0)));
        assert!(cache.lookup_or_fill(1, at(10)));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn warm_prefills() {
        let mut cache = EdgeCache::new();
        cache.warm(7, at(0));
        assert!(cache.lookup_or_fill(7, at(1)));
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut cache = EdgeCache::with_ttl(SimDuration::from_millis(100));
        assert!(!cache.lookup_or_fill(1, at(0)));
        assert!(cache.lookup_or_fill(1, at(50)));
        assert!(!cache.lookup_or_fill(1, at(200)), "expired entry re-fills");
        // Re-fill at 200 renews the entry.
        assert!(cache.lookup_or_fill(1, at(250)));
    }

    #[test]
    fn clear_evicts_everything() {
        let mut cache = EdgeCache::new();
        cache.warm(1, at(0));
        cache.clear();
        assert!(!cache.lookup_or_fill(1, at(1)));
    }

    #[test]
    fn miss_penalty_scales_with_origin_rtt() {
        let near = miss_penalty(SimDuration::from_millis(20));
        let far = miss_penalty(SimDuration::from_millis(120));
        assert_eq!(far - near, SimDuration::from_millis(100));
    }
}
