//! Stateful edge nodes with finite resources and graceful degradation.
//!
//! The paper measures clients against effectively infinite edges; this
//! module models the PoP itself as a finite, degradable resource — the
//! operative constraint once a handful of giant providers terminate most
//! H3 traffic. An [`EdgeState`] tracks, per PoP:
//!
//! * a **handshake CPU budget** as a deterministic token bucket, with
//!   QUIC's userspace full-crypto handshake costed higher than a
//!   kernel-path TCP + TLS-resumption handshake;
//! * **per-connection memory** against a budget, QUIC again costed
//!   higher (userspace buffers and per-connection crypto state);
//! * a **hard connection limit**;
//! * a capacity-bounded **0-RTT ticket store** with deterministic FIFO
//!   eviction: a client whose server-side session state was evicted has
//!   its 0-RTT offer rejected (the transport's 1-RTT downgrade path).
//!
//! The admission controller sheds load by protocol-aware policy instead
//! of silently queueing forever: when resources run out the edge
//! *refuses* (QUIC first — it is the expensive handshake), and the
//! refusal is wired through `transport`/`browser` so the client's
//! resilience stack (broken-QUIC cache, H3→H2 fallback, re-dial
//! backoff) reacts within one RTT.
//!
//! The module is deliberately protocol-agnostic (no `transport` types):
//! callers classify the handshake as [`HandshakeKind::Tcp`] or
//! [`HandshakeKind::Quic`] and wire the decision themselves, keeping
//! `h3cdn-cdn` at its layer in the crate graph.

use h3cdn_sim_core::SimTime;
use std::collections::{HashMap, VecDeque};

/// Which transport a new connection's handshake runs over, as seen by
/// the admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HandshakeKind {
    /// TCP + TLS (kernel path; resumption keeps the crypto cheap).
    Tcp,
    /// QUIC (userspace path; full asymmetric crypto per handshake).
    Quic,
}

/// Finite-resource budgets of one PoP.
///
/// The defaults model an amply-provisioned edge: budgets high enough
/// that a single page visit never trips them (the client-side
/// experiments' implicit assumption, now explicit and adjustable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeConfig {
    /// Hard cap on concurrently tracked connections.
    pub max_connections: u32,
    /// Total connection-memory budget, bytes.
    pub memory_budget_bytes: u64,
    /// Memory charged per TCP connection (kernel socket + TLS state).
    pub tcp_conn_memory_bytes: u64,
    /// Memory charged per QUIC connection (userspace buffers, crypto
    /// state; higher than TCP).
    pub quic_conn_memory_bytes: u64,
    /// Handshake-CPU token refill rate, tokens per simulated second.
    pub cpu_tokens_per_sec: u64,
    /// Token-bucket capacity (burst headroom).
    pub cpu_token_burst: u64,
    /// Tokens one TCP + TLS handshake costs.
    pub tcp_handshake_tokens: u64,
    /// Tokens one QUIC handshake costs (higher: full crypto, userspace).
    pub quic_handshake_tokens: u64,
    /// Capacity of the 0-RTT ticket store (server-side session slots).
    pub ticket_slots: usize,
    /// Protocol-aware shedding: refuse new QUIC handshakes while the
    /// number of free connection slots is at or below this headroom,
    /// keeping the last slots for cheap TCP fallback traffic.
    pub quic_shed_headroom: u32,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            max_connections: 1 << 16,
            memory_budget_bytes: 4 << 30, // 4 GiB
            tcp_conn_memory_bytes: 64 << 10,
            quic_conn_memory_bytes: 256 << 10,
            cpu_tokens_per_sec: 1_000_000,
            cpu_token_burst: 1_000_000,
            tcp_handshake_tokens: 10,
            quic_handshake_tokens: 40,
            ticket_slots: 1 << 16,
            quic_shed_headroom: 0,
        }
    }
}

/// A nonsensical edge budget, rejected up front instead of panicking or
/// silently clamping mid-simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeConfigError {
    /// `max_connections == 0`: the edge could never serve anything.
    ZeroConnections,
    /// `ticket_slots == 0`: every resumption would miss by construction.
    ZeroTicketSlots,
    /// `memory_budget_bytes == 0`: no connection could ever fit.
    ZeroMemoryBudget,
    /// A single connection's memory exceeds the whole budget.
    ConnMemoryExceedsBudget {
        /// Memory one connection of the offending kind needs.
        required: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The token bucket can never hold one handshake's cost.
    BurstBelowHandshakeCost {
        /// Tokens the costlier handshake needs.
        required: u64,
        /// The configured bucket capacity.
        burst: u64,
    },
    /// The QUIC shed headroom is at least the connection limit, so no
    /// QUIC handshake could ever be admitted.
    HeadroomExcludesQuic {
        /// The configured headroom.
        headroom: u32,
        /// The configured connection limit.
        max_connections: u32,
    },
    /// A bounded [`EdgeCache`](crate::EdgeCache) with zero capacity.
    ZeroCacheCapacity,
}

impl std::fmt::Display for EdgeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeConfigError::ZeroConnections => {
                write!(f, "edge config allows zero connections")
            }
            EdgeConfigError::ZeroTicketSlots => {
                write!(f, "edge config allows zero ticket slots")
            }
            EdgeConfigError::ZeroMemoryBudget => {
                write!(f, "edge config has a zero memory budget")
            }
            EdgeConfigError::ConnMemoryExceedsBudget { required, budget } => write!(
                f,
                "one connection needs {required} bytes but the edge budget is {budget}"
            ),
            EdgeConfigError::BurstBelowHandshakeCost { required, burst } => write!(
                f,
                "a handshake costs {required} tokens but the bucket holds only {burst}"
            ),
            EdgeConfigError::HeadroomExcludesQuic {
                headroom,
                max_connections,
            } => write!(
                f,
                "QUIC shed headroom {headroom} excludes QUIC entirely at \
                 {max_connections} connections"
            ),
            EdgeConfigError::ZeroCacheCapacity => {
                write!(f, "edge cache bounded to zero entries")
            }
        }
    }
}

impl std::error::Error for EdgeConfigError {}

impl EdgeConfig {
    /// Checks the budgets for configurations that could never admit a
    /// connection (or never hit a ticket).
    ///
    /// # Errors
    ///
    /// Returns the first [`EdgeConfigError`] found.
    pub fn validate(&self) -> Result<(), EdgeConfigError> {
        if self.max_connections == 0 {
            return Err(EdgeConfigError::ZeroConnections);
        }
        if self.ticket_slots == 0 {
            return Err(EdgeConfigError::ZeroTicketSlots);
        }
        if self.memory_budget_bytes == 0 {
            return Err(EdgeConfigError::ZeroMemoryBudget);
        }
        let required = self.tcp_conn_memory_bytes.max(self.quic_conn_memory_bytes);
        if required > self.memory_budget_bytes {
            return Err(EdgeConfigError::ConnMemoryExceedsBudget {
                required,
                budget: self.memory_budget_bytes,
            });
        }
        let cost = self.tcp_handshake_tokens.max(self.quic_handshake_tokens);
        if cost > self.cpu_token_burst {
            return Err(EdgeConfigError::BurstBelowHandshakeCost {
                required: cost,
                burst: self.cpu_token_burst,
            });
        }
        if self.quic_shed_headroom >= self.max_connections {
            return Err(EdgeConfigError::HeadroomExcludesQuic {
                headroom: self.quic_shed_headroom,
                max_connections: self.max_connections,
            });
        }
        Ok(())
    }
}

/// Why the admission controller refused a handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalCause {
    /// Every connection slot is taken.
    ConnectionLimit,
    /// Free slots are within the QUIC shed headroom: the remaining
    /// capacity is reserved for cheap TCP traffic.
    QuicShed,
    /// The connection-memory budget is exhausted.
    Memory,
    /// The handshake-CPU token bucket is empty (it refills over time,
    /// so refusals recover once the arrival burst passes).
    Cpu,
}

/// The admission controller's verdict on one new handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted. For QUIC, `ticket_hit` reports whether the edge still
    /// holds this client's 0-RTT session state; on `false` the server
    /// must reject early data (the client pays the 1-RTT downgrade).
    Admitted {
        /// Server-side session state found for this client.
        ticket_hit: bool,
    },
    /// Refused: the client sees an immediate typed refusal (QUIC
    /// CONNECTION_REFUSED / TCP RST), not an unbounded queue.
    Refused {
        /// Which budget ran out.
        cause: RefusalCause,
    },
}

/// Per-PoP admission/shedding counters. Serializable so overload
/// sweeps can journal them through the durable runner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EdgeStats {
    /// TCP handshakes admitted.
    pub admitted_tcp: u64,
    /// QUIC handshakes admitted.
    pub admitted_quic: u64,
    /// TCP handshakes refused.
    pub refused_tcp: u64,
    /// QUIC handshakes refused.
    pub refused_quic: u64,
    /// Refusals caused by the hard connection limit.
    pub shed_conn_limit: u64,
    /// QUIC refusals caused by the protocol-aware shed headroom.
    pub shed_quic_policy: u64,
    /// Refusals caused by the memory budget.
    pub shed_memory: u64,
    /// Refusals caused by an empty handshake-CPU bucket.
    pub shed_cpu: u64,
    /// QUIC admissions whose client still had server-side 0-RTT state.
    pub ticket_hits: u64,
    /// QUIC admissions whose client's state was absent or evicted.
    pub ticket_misses: u64,
    /// Ticket-store entries evicted to make room.
    pub ticket_evictions: u64,
}

impl EdgeStats {
    /// All refusals, both protocols.
    pub fn refused(&self) -> u64 {
        self.refused_tcp + self.refused_quic
    }

    /// All admissions, both protocols.
    pub fn admitted(&self) -> u64 {
        self.admitted_tcp + self.admitted_quic
    }

    /// Adds `other`'s counters into `self` — for totalling stats
    /// across edges or across swarm runs.
    pub fn absorb(&mut self, other: &EdgeStats) {
        self.admitted_tcp += other.admitted_tcp;
        self.admitted_quic += other.admitted_quic;
        self.refused_tcp += other.refused_tcp;
        self.refused_quic += other.refused_quic;
        self.shed_conn_limit += other.shed_conn_limit;
        self.shed_quic_policy += other.shed_quic_policy;
        self.shed_memory += other.shed_memory;
        self.shed_cpu += other.shed_cpu;
        self.ticket_hits += other.ticket_hits;
        self.ticket_misses += other.ticket_misses;
        self.ticket_evictions += other.ticket_evictions;
    }
}

/// Token-bucket precision: tokens are tracked in nano-tokens so the
/// refill is exact integer arithmetic on simulated nanoseconds.
const NANO: u128 = 1_000_000_000;

/// The live resource state of one PoP.
#[derive(Debug, Clone)]
pub struct EdgeState {
    config: EdgeConfig,
    active: u32,
    memory_in_use: u64,
    /// Handshake-CPU bucket, nano-tokens.
    tokens_nano: u64,
    last_refill: SimTime,
    /// Memory charged per tracked connection (for release).
    conn_memory: HashMap<u64, u64>,
    /// Ticket-store keys, oldest first (FIFO eviction order).
    ticket_order: VecDeque<u64>,
    stats: EdgeStats,
}

impl EdgeState {
    /// Builds the edge, validating the budgets.
    ///
    /// # Errors
    ///
    /// Returns the config's first [`EdgeConfigError`].
    pub fn new(config: EdgeConfig) -> Result<Self, EdgeConfigError> {
        config.validate()?;
        let tokens_nano = saturating_nano(config.cpu_token_burst);
        Ok(EdgeState {
            config,
            active: 0,
            memory_in_use: 0,
            tokens_nano,
            last_refill: SimTime::ZERO,
            conn_memory: HashMap::new(),
            ticket_order: VecDeque::new(),
            stats: EdgeStats::default(),
        })
    }

    /// The configured budgets.
    pub fn config(&self) -> &EdgeConfig {
        &self.config
    }

    /// Connections currently tracked.
    pub fn active_connections(&self) -> u32 {
        self.active
    }

    /// Admission/shedding counters so far.
    pub fn stats(&self) -> &EdgeStats {
        &self.stats
    }

    /// Deterministic token refill up to `now`.
    fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.last_refill = self.last_refill.max(now);
        if elapsed.is_zero() {
            return;
        }
        let gained = u128::from(elapsed.as_nanos()) * u128::from(self.config.cpu_tokens_per_sec);
        let cap = u128::from(self.config.cpu_token_burst) * NANO;
        let total = (u128::from(self.tokens_nano) + gained).min(cap);
        self.tokens_nano = u64::try_from(total).unwrap_or(u64::MAX);
    }

    /// Decides one new handshake. `conn_key` identifies the connection
    /// (for the matching [`EdgeState::release`]); `client_key`
    /// identifies the client for the ticket store.
    pub fn admit(
        &mut self,
        kind: HandshakeKind,
        conn_key: u64,
        client_key: u64,
        now: SimTime,
    ) -> Admission {
        self.refill(now);
        let (memory, cost) = match kind {
            HandshakeKind::Tcp => (
                self.config.tcp_conn_memory_bytes,
                self.config.tcp_handshake_tokens,
            ),
            HandshakeKind::Quic => (
                self.config.quic_conn_memory_bytes,
                self.config.quic_handshake_tokens,
            ),
        };
        let free = self.config.max_connections.saturating_sub(self.active);
        let cause = if free == 0 {
            Some(RefusalCause::ConnectionLimit)
        } else if kind == HandshakeKind::Quic && free <= self.config.quic_shed_headroom {
            Some(RefusalCause::QuicShed)
        } else if self.memory_in_use + memory > self.config.memory_budget_bytes {
            Some(RefusalCause::Memory)
        } else if u128::from(self.tokens_nano) < u128::from(cost) * NANO {
            Some(RefusalCause::Cpu)
        } else {
            None
        };
        if let Some(cause) = cause {
            match kind {
                HandshakeKind::Tcp => self.stats.refused_tcp += 1,
                HandshakeKind::Quic => self.stats.refused_quic += 1,
            }
            match cause {
                RefusalCause::ConnectionLimit => self.stats.shed_conn_limit += 1,
                RefusalCause::QuicShed => self.stats.shed_quic_policy += 1,
                RefusalCause::Memory => self.stats.shed_memory += 1,
                RefusalCause::Cpu => self.stats.shed_cpu += 1,
            }
            return Admission::Refused { cause };
        }
        self.tokens_nano -= u64::try_from(u128::from(cost) * NANO).unwrap_or(u64::MAX);
        self.memory_in_use += memory;
        self.active += 1;
        self.conn_memory.insert(conn_key, memory);
        let ticket_hit = match kind {
            HandshakeKind::Tcp => {
                self.stats.admitted_tcp += 1;
                true
            }
            HandshakeKind::Quic => {
                self.stats.admitted_quic += 1;
                let hit = self.ticket_lookup_or_fill(client_key);
                if hit {
                    self.stats.ticket_hits += 1;
                } else {
                    self.stats.ticket_misses += 1;
                }
                hit
            }
        };
        Admission::Admitted { ticket_hit }
    }

    /// Returns a closed connection's slot and memory to the budgets.
    /// Unknown keys are ignored (release must be idempotent — a server
    /// can observe one close through several paths).
    pub fn release(&mut self, conn_key: u64) {
        if let Some(memory) = self.conn_memory.remove(&conn_key) {
            self.memory_in_use = self.memory_in_use.saturating_sub(memory);
            self.active = self.active.saturating_sub(1);
        }
    }

    /// Whether the edge currently holds `client_key`'s session state.
    pub fn has_ticket(&self, client_key: u64) -> bool {
        self.ticket_order.contains(&client_key)
    }

    /// Bounded FIFO ticket store: a hit refreshes nothing (FIFO, not
    /// LRU — deterministic and cheap); a miss fills a slot, evicting
    /// the oldest entry when full.
    fn ticket_lookup_or_fill(&mut self, client_key: u64) -> bool {
        if self.ticket_order.contains(&client_key) {
            return true;
        }
        while self.ticket_order.len() >= self.config.ticket_slots {
            self.ticket_order.pop_front();
            self.stats.ticket_evictions += 1;
        }
        self.ticket_order.push_back(client_key);
        false
    }
}

fn saturating_nano(tokens: u64) -> u64 {
    u64::try_from(u128::from(tokens) * NANO).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h3cdn_sim_core::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn tiny() -> EdgeConfig {
        EdgeConfig {
            max_connections: 2,
            memory_budget_bytes: 1 << 20,
            tcp_conn_memory_bytes: 1 << 10,
            quic_conn_memory_bytes: 4 << 10,
            cpu_tokens_per_sec: 100,
            cpu_token_burst: 100,
            tcp_handshake_tokens: 10,
            quic_handshake_tokens: 40,
            ticket_slots: 2,
            quic_shed_headroom: 0,
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        let ok = EdgeConfig::default();
        assert_eq!(ok.validate(), Ok(()));
        let zero_conns = EdgeConfig {
            max_connections: 0,
            ..tiny()
        };
        assert_eq!(zero_conns.validate(), Err(EdgeConfigError::ZeroConnections));
        let zero_tickets = EdgeConfig {
            ticket_slots: 0,
            ..tiny()
        };
        assert_eq!(
            zero_tickets.validate(),
            Err(EdgeConfigError::ZeroTicketSlots)
        );
        let zero_mem = EdgeConfig {
            memory_budget_bytes: 0,
            ..tiny()
        };
        assert_eq!(zero_mem.validate(), Err(EdgeConfigError::ZeroMemoryBudget));
        let starved = EdgeConfig {
            cpu_token_burst: 5,
            ..tiny()
        };
        assert_eq!(
            starved.validate(),
            Err(EdgeConfigError::BurstBelowHandshakeCost {
                required: 40,
                burst: 5
            })
        );
        let headroom = EdgeConfig {
            quic_shed_headroom: 2,
            ..tiny()
        };
        assert_eq!(
            headroom.validate(),
            Err(EdgeConfigError::HeadroomExcludesQuic {
                headroom: 2,
                max_connections: 2
            })
        );
        assert!(EdgeState::new(zero_conns).is_err());
        // Errors render a human-readable sentence.
        assert!(EdgeConfigError::ZeroTicketSlots
            .to_string()
            .contains("ticket slots"));
    }

    #[test]
    fn connection_limit_refuses_then_release_recovers() {
        let mut edge = EdgeState::new(tiny()).expect("valid config");
        assert!(matches!(
            edge.admit(HandshakeKind::Tcp, 1, 100, at(0)),
            Admission::Admitted { .. }
        ));
        assert!(matches!(
            edge.admit(HandshakeKind::Tcp, 2, 101, at(0)),
            Admission::Admitted { .. }
        ));
        assert_eq!(
            edge.admit(HandshakeKind::Tcp, 3, 102, at(0)),
            Admission::Refused {
                cause: RefusalCause::ConnectionLimit
            }
        );
        edge.release(1);
        edge.release(1); // idempotent
        assert_eq!(edge.active_connections(), 1);
        assert!(matches!(
            edge.admit(HandshakeKind::Tcp, 3, 102, at(1)),
            Admission::Admitted { .. }
        ));
        assert_eq!(edge.stats().shed_conn_limit, 1);
        assert_eq!(edge.stats().refused_tcp, 1);
    }

    #[test]
    fn cpu_budget_sheds_quic_first_and_refills() {
        // Burst of 100 tokens: two QUIC handshakes (40 each) leave 20 —
        // enough for two TCP handshakes (10 each) but no third QUIC.
        let cfg = EdgeConfig {
            max_connections: 100,
            ..tiny()
        };
        let mut edge = EdgeState::new(cfg).expect("valid config");
        for key in 0..2 {
            assert!(matches!(
                edge.admit(HandshakeKind::Quic, key, key, at(0)),
                Admission::Admitted { .. }
            ));
        }
        assert_eq!(
            edge.admit(HandshakeKind::Quic, 2, 2, at(0)),
            Admission::Refused {
                cause: RefusalCause::Cpu
            }
        );
        // The cheap TCP handshake still fits: protocol-aware shedding.
        assert!(matches!(
            edge.admit(HandshakeKind::Tcp, 3, 3, at(0)),
            Admission::Admitted { .. }
        ));
        // 100 tokens/sec: after 400 ms the bucket holds 40+ again.
        assert!(matches!(
            edge.admit(HandshakeKind::Quic, 4, 4, at(400)),
            Admission::Admitted { .. }
        ));
        assert_eq!(edge.stats().shed_cpu, 1);
        assert_eq!(edge.stats().refused_quic, 1);
    }

    #[test]
    fn quic_shed_headroom_reserves_slots_for_tcp() {
        let cfg = EdgeConfig {
            max_connections: 2,
            quic_shed_headroom: 1,
            ..tiny()
        };
        let mut edge = EdgeState::new(cfg).expect("valid config");
        assert!(matches!(
            edge.admit(HandshakeKind::Quic, 1, 1, at(0)),
            Admission::Admitted { .. }
        ));
        // One free slot left == headroom: QUIC refused, TCP admitted.
        assert_eq!(
            edge.admit(HandshakeKind::Quic, 2, 2, at(0)),
            Admission::Refused {
                cause: RefusalCause::QuicShed
            }
        );
        assert!(matches!(
            edge.admit(HandshakeKind::Tcp, 3, 3, at(0)),
            Admission::Admitted { .. }
        ));
        assert_eq!(edge.stats().shed_quic_policy, 1);
    }

    #[test]
    fn memory_budget_refuses() {
        let cfg = EdgeConfig {
            max_connections: 100,
            memory_budget_bytes: 6 << 10, // one QUIC (4K) + one TCP (1K) fit
            cpu_tokens_per_sec: 1_000_000,
            cpu_token_burst: 1_000_000,
            ..tiny()
        };
        let mut edge = EdgeState::new(cfg).expect("valid config");
        assert!(matches!(
            edge.admit(HandshakeKind::Quic, 1, 1, at(0)),
            Admission::Admitted { .. }
        ));
        assert!(matches!(
            edge.admit(HandshakeKind::Tcp, 2, 2, at(0)),
            Admission::Admitted { .. }
        ));
        assert_eq!(
            edge.admit(HandshakeKind::Quic, 3, 3, at(0)),
            Admission::Refused {
                cause: RefusalCause::Memory
            }
        );
        assert_eq!(edge.stats().shed_memory, 1);
    }

    #[test]
    fn ticket_store_evicts_fifo_and_reports() {
        let cfg = EdgeConfig {
            max_connections: 100,
            cpu_tokens_per_sec: 1_000_000,
            cpu_token_burst: 1_000_000,
            ticket_slots: 2,
            ..tiny()
        };
        let mut edge = EdgeState::new(cfg).expect("valid config");
        // Three distinct clients through a two-slot store: the first
        // client's state is evicted.
        for (conn, client) in [(1, 10), (2, 11), (3, 12)] {
            assert_eq!(
                edge.admit(HandshakeKind::Quic, conn, client, at(0)),
                Admission::Admitted { ticket_hit: false }
            );
        }
        assert!(!edge.has_ticket(10), "oldest entry evicted");
        assert!(edge.has_ticket(11) && edge.has_ticket(12));
        assert_eq!(edge.stats().ticket_evictions, 1);
        // Client 11 returns: server-side state still there, 0-RTT ok.
        assert_eq!(
            edge.admit(HandshakeKind::Quic, 4, 11, at(1)),
            Admission::Admitted { ticket_hit: true }
        );
        // Client 10 returns: state evicted, 0-RTT must be rejected.
        assert_eq!(
            edge.admit(HandshakeKind::Quic, 5, 10, at(2)),
            Admission::Admitted { ticket_hit: false }
        );
        assert_eq!(edge.stats().ticket_hits, 1);
        assert_eq!(edge.stats().ticket_misses, 4);
    }

    #[test]
    fn refill_is_deterministic_and_capped() {
        let cfg = EdgeConfig {
            max_connections: 100,
            ..tiny()
        };
        let mut edge = EdgeState::new(cfg).expect("valid config");
        // Drain with two QUIC + two TCP handshakes (100 tokens).
        for key in 0..2 {
            edge.admit(HandshakeKind::Quic, key, key, at(0));
        }
        for key in 2..4 {
            edge.admit(HandshakeKind::Tcp, key, key, at(0));
        }
        assert_eq!(edge.tokens_nano, 0);
        // A long idle caps at the burst, never beyond.
        edge.refill(at(1_000_000));
        assert_eq!(edge.tokens_nano, saturating_nano(100));
    }
}
