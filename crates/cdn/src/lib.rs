//! CDN provider model for the `h3cdn` reproduction.
//!
//! Provides the study's seven-provider universe with market shares and
//! per-provider H3 adoption rates calibrated so the corpus reproduces the
//! paper's Table II and Fig. 2 marginals; per-vantage edge RTT profiles
//! (the three CloudLab sites); edge caches; and a re-implementation of
//! the LocEdge classifier that identifies the hosting provider from
//! response-header fingerprints.

pub mod edge;
pub mod locedge;
pub mod overload;
pub mod provider;
pub mod topology;

pub use edge::EdgeCache;
pub use locedge::{classify, fingerprint_headers};
pub use overload::{
    Admission, EdgeConfig, EdgeConfigError, EdgeState, EdgeStats, HandshakeKind, RefusalCause,
};
pub use provider::{Provider, ProviderProfile, ProviderRegistry};
pub use topology::Vantage;

// The deterministic parallel runner in `h3cdn` shares provider and
// topology data across worker threads; keep these types `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EdgeCache>();
    assert_send_sync::<EdgeState>();
    assert_send_sync::<EdgeStats>();
    assert_send_sync::<Provider>();
    assert_send_sync::<ProviderProfile>();
    assert_send_sync::<ProviderRegistry>();
    assert_send_sync::<Vantage>();
};
