//! Synthetic webpage corpus calibrated to the ICDCS 2024 study.
//!
//! The original measurement crawled 325 Alexa-Top landing pages in
//! October 2022. That crawl cannot be repeated (the list is retired, the
//! pages have changed), so this crate generates a *seeded synthetic
//! corpus* matching every page-composition statistic the paper reports
//! and analyses:
//!
//! * ≈ 36 057 requests across 325 pages, 67 % served by CDNs (Table II);
//! * 75 % of pages have > 50 % CDN resources (Fig. 3);
//! * top-4 provider appearance probability > 50 %, 94.8 % of pages use
//!   ≥ 2 providers (Fig. 4);
//! * per-provider resource counts heavy enough that ~half of
//!   Cloudflare/Google pages carry > 10 of their resources (Fig. 5);
//! * 75 % of CDN resources below 20 KB (§VI-E);
//! * per-resource H3 availability drawn from the provider adoption rates
//!   (Table II / Fig. 2), which is what makes "number of H3-enabled CDN
//!   resources" (Fig. 6a's grouping variable) a per-page property;
//! * a pool of ~60 *shared* CDN domains reused across pages — the
//!   substrate for connection resumption across consecutive visits
//!   (Fig. 8, Table III's 58-domain vectors).
//!
//! Generation is a pure function of [`WorkloadSpec`] (including its
//! seed): identical inputs give byte-identical corpora, and the corpus is
//! independent of which protocol later fetches it.

pub mod corpus;
pub mod domains;
pub mod population;
pub mod resource;
pub mod spec;

pub use corpus::{generate, Corpus};
pub use domains::{DomainId, DomainTable};
pub use population::{page_record, PageRecord, PopulationSpec};
pub use resource::{Hosting, Resource, ResourceKind, Webpage};
pub use spec::WorkloadSpec;

// The deterministic parallel runner in `h3cdn` shares the corpus across
// worker threads by reference; keep these types `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Corpus>();
    assert_send_sync::<DomainTable>();
    assert_send_sync::<Webpage>();
    assert_send_sync::<WorkloadSpec>();
};
