//! Domain table: shared CDN domains, page-private customer domains, and
//! origin domains.
//!
//! Shared domains (fonts.googleapis.com, cdnjs.cloudflare.com, …) recur
//! across pages; they are what makes TLS session resumption work across
//! consecutive visits to *different* sites (Fig. 8), and they are the
//! coordinates of Table III's 58-dimensional page vectors.

use std::collections::BTreeMap;

use h3cdn_cdn::Provider;
use serde::{Deserialize, Serialize};

/// Identifies one domain (hostname) in a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainId(pub u64);

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "domain#{}", self.0)
    }
}

/// What a domain is, for topology and classification purposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DomainKind {
    /// A CDN domain reused across many pages.
    SharedCdn(Provider),
    /// A customer-specific CDN domain used by a single page.
    PrivateCdn(Provider),
    /// A website's own origin.
    Origin,
    /// A third-party, non-CDN web service (analytics, tags, ads APIs)
    /// reused across pages.
    SharedService,
}

/// Registry of every domain in a corpus.
#[derive(Debug, Clone, Default)]
pub struct DomainTable {
    names: Vec<String>,
    kinds: Vec<DomainKind>,
    shared_by_provider: BTreeMap<Provider, Vec<DomainId>>,
    shared_services: Vec<DomainId>,
}

/// The shared CDN domain names seeded per provider. Counts are sized so
/// the cross-page shared pool lands near the paper's 58 domains.
fn shared_domain_names() -> Vec<(Provider, &'static str)> {
    vec![
        (Provider::Google, "fonts.googleapis.com"),
        (Provider::Google, "fonts.gstatic.com"),
        (Provider::Google, "ajax.googleapis.com"),
        (Provider::Google, "www.gstatic.com"),
        (Provider::Google, "maps.googleapis.com"),
        (Provider::Google, "storage.googleapis.com"),
        (Provider::Google, "lh3.googleusercontent.com"),
        (Provider::Google, "www.googletagmanager.com"),
        (Provider::Google, "ssl.google-analytics.com"),
        (Provider::Google, "i.ytimg.com"),
        (Provider::Google, "yt3.ggpht.com"),
        (Provider::Google, "play.googleapis.com"),
        (Provider::Cloudflare, "cdnjs.cloudflare.com"),
        (Provider::Cloudflare, "cdn.jsdelivr.net"),
        (Provider::Cloudflare, "static.cloudflareinsights.com"),
        (Provider::Cloudflare, "cdn-cookieyes.com"),
        (Provider::Cloudflare, "embed.cloudflarestream.com"),
        (Provider::Cloudflare, "assets.onecdn.com"),
        (Provider::Cloudflare, "cdn.statically.io"),
        (Provider::Cloudflare, "unpkg.com"),
        (Provider::Cloudflare, "static.hotjar.com"),
        (Provider::Cloudflare, "widget.intercom.io"),
        (Provider::Cloudflare, "cdn.onesignal.com"),
        (Provider::Cloudflare, "browser.sentry-cdn.com"),
        (Provider::Cloudflare, "cdn.segment.com"),
        (Provider::Cloudflare, "js.stripe.com"),
        (Provider::Amazon, "d1.awsstatic.cloudfront.net"),
        (Provider::Amazon, "d2.media.cloudfront.net"),
        (Provider::Amazon, "d3.assets.cloudfront.net"),
        (Provider::Amazon, "images-na.ssl-images-amazon.com"),
        (Provider::Amazon, "m.media-amazon.com"),
        (Provider::Amazon, "d4.player.cloudfront.net"),
        (Provider::Amazon, "d5.fonts.cloudfront.net"),
        (Provider::Amazon, "d6.tags.cloudfront.net"),
        (Provider::Amazon, "d7.ads.cloudfront.net"),
        (Provider::Amazon, "d8.video.cloudfront.net"),
        (Provider::Fastly, "cdn.shopify.com"),
        (Provider::Fastly, "assets-cdn.github.com"),
        (Provider::Fastly, "polyfill-fastly.net"),
        (Provider::Fastly, "global.fastly.net"),
        (Provider::Fastly, "cdn.wikimedia.fastlylb.net"),
        (Provider::Fastly, "pypi-camo.fastly.net"),
        (Provider::Akamai, "static.akamaized.net"),
        (Provider::Akamai, "media.akamaihd.net"),
        (Provider::Akamai, "cdn-akamai.example-tech.com"),
        (Provider::Akamai, "assets.adobedtm.akamaized.net"),
        (Provider::Akamai, "images.akamai.steamstatic.com"),
        (Provider::Akamai, "content.akamaized.net"),
        (Provider::Microsoft, "ajax.aspnetcdn.com"),
        (Provider::Microsoft, "az416426.vo.msecnd.net"),
        (
            Provider::Microsoft,
            "static2.sharepointonline.azureedge.net",
        ),
        (Provider::Microsoft, "cdn.office.azureedge.net"),
        (Provider::QuicCloud, "static.quic.cloud"),
        (Provider::QuicCloud, "img.quic.cloud"),
        (Provider::Other, "cdn.cookielaw.org"),
        (Provider::Other, "cdn.privacy-center.org"),
        (Provider::Other, "secure.gravatar.com"),
        (Provider::Other, "s.w.org"),
        (Provider::Other, "stats.wp.com"),
        (Provider::Other, "cdn.syndication.example.net"),
    ]
}

/// Shared third-party service domains (non-CDN): trackers, tag managers,
/// consent and ad endpoints that appear on many pages but are served by
/// the vendor's own (often H2- or even H1-only) infrastructure.
fn shared_service_names() -> Vec<&'static str> {
    vec![
        "collector.metrics-svc.example",
        "tags.tagmanager-svc.example",
        "pixel.tracker-svc.example",
        "api.ads-exchange.example",
        "events.product-analytics.example",
        "beacon.rum-vendor.example",
        "consent.cmp-vendor.example",
        "chat.support-widget.example",
        "api.ab-testing.example",
        "sync.idgraph-vendor.example",
        "logs.errortracking.example",
        "api.recommendations.example",
        "social.share-buttons.example",
        "api.weather-widget.example",
        "quotes.market-data.example",
    ]
}

impl DomainTable {
    /// Builds a table pre-seeded with the shared CDN domain pool and the
    /// shared third-party service pool.
    pub fn with_shared_pool() -> Self {
        let mut table = DomainTable::default();
        for (provider, name) in shared_domain_names() {
            let id = table.push(name.to_string(), DomainKind::SharedCdn(provider));
            table
                .shared_by_provider
                .entry(provider)
                .or_default()
                .push(id);
        }
        for name in shared_service_names() {
            let id = table.push(name.to_string(), DomainKind::SharedService);
            table.shared_services.push(id);
        }
        table
    }

    /// The shared third-party service domains.
    pub fn shared_services(&self) -> &[DomainId] {
        &self.shared_services
    }

    fn push(&mut self, name: String, kind: DomainKind) -> DomainId {
        let id = DomainId(self.names.len() as u64);
        self.names.push(name);
        self.kinds.push(kind);
        id
    }

    /// Registers a page-private CDN domain (a customer vanity domain).
    pub fn add_private_cdn(&mut self, site: usize, provider: Provider) -> DomainId {
        let name = format!(
            "cdn{site}.{}.example-customer.net",
            provider.name().to_lowercase()
        );
        self.push(name, DomainKind::PrivateCdn(provider))
    }

    /// Registers a website origin domain.
    pub fn add_origin(&mut self, site: usize) -> DomainId {
        self.push(format!("www.site{site}.example.org"), DomainKind::Origin)
    }

    /// The shared domains of `provider`.
    pub fn shared_domains(&self, provider: Provider) -> &[DomainId] {
        self.shared_by_provider
            .get(&provider)
            .map_or(&[], Vec::as_slice)
    }

    /// Total shared-pool size across providers.
    pub fn shared_pool_len(&self) -> usize {
        self.shared_by_provider.values().map(Vec::len).sum()
    }

    /// The hostname of a domain.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn name(&self, id: DomainId) -> &str {
        &self.names[id.0 as usize]
    }

    /// The kind of a domain.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub(crate) fn kind(&self, id: DomainId) -> &DomainKind {
        &self.kinds[id.0 as usize]
    }

    /// The provider behind a CDN domain, or `None` for origins and
    /// third-party services.
    pub fn provider(&self, id: DomainId) -> Option<Provider> {
        match self.kind(id) {
            DomainKind::SharedCdn(p) | DomainKind::PrivateCdn(p) => Some(*p),
            DomainKind::Origin | DomainKind::SharedService => None,
        }
    }

    /// Whether the domain is a third-party (non-CDN) service.
    pub fn is_service(&self, id: DomainId) -> bool {
        matches!(self.kind(id), DomainKind::SharedService)
    }

    /// Whether the domain is in the cross-page shared pool.
    pub fn is_shared(&self, id: DomainId) -> bool {
        matches!(self.kind(id), DomainKind::SharedCdn(_))
    }

    /// Number of domains registered.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_pool_is_near_the_papers_58() {
        let table = DomainTable::with_shared_pool();
        let n = table.shared_pool_len();
        assert!((54..=66).contains(&n), "shared pool size {n}");
    }

    #[test]
    fn every_provider_has_shared_domains() {
        let table = DomainTable::with_shared_pool();
        for p in Provider::ALL {
            assert!(
                !table.shared_domains(p).is_empty(),
                "{p} needs at least one shared domain"
            );
        }
    }

    #[test]
    fn google_and_cloudflare_have_the_deepest_pools() {
        let table = DomainTable::with_shared_pool();
        let g = table.shared_domains(Provider::Google).len();
        let cf = table.shared_domains(Provider::Cloudflare).len();
        for p in [Provider::Fastly, Provider::Akamai, Provider::Microsoft] {
            assert!(g > table.shared_domains(p).len());
            assert!(cf > table.shared_domains(p).len());
        }
    }

    #[test]
    fn private_and_origin_domains_register() {
        let mut table = DomainTable::with_shared_pool();
        let before = table.len();
        let private = table.add_private_cdn(3, Provider::Fastly);
        let origin = table.add_origin(3);
        assert_eq!(table.len(), before + 2);
        assert_eq!(table.provider(private), Some(Provider::Fastly));
        assert_eq!(table.provider(origin), None);
        assert!(!table.is_shared(private));
        assert!(table.name(origin).contains("site3"));
    }

    #[test]
    fn shared_domains_carry_their_provider() {
        let table = DomainTable::with_shared_pool();
        for p in Provider::ALL {
            for &d in table.shared_domains(p) {
                assert_eq!(table.provider(d), Some(p));
                assert!(table.is_shared(d));
            }
        }
    }
}
