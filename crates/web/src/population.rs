//! Population-scale synthetic Internet: compact per-page records at
//! 10⁵–10⁶ sites.
//!
//! [`crate::corpus::generate`] materializes full [`crate::Webpage`]
//! objects — every resource with domain, kind, sizes, discovery DAG —
//! which is what packet-level visits need and what a million-page
//! campaign cannot afford. This module generates the *distributional*
//! layer only: one flat [`PageRecord`] per site carrying the counts the
//! paper's population figures aggregate (requests, CDN share, provider
//! presence and per-provider request/H3 splits, a fixed-grid size
//! histogram). Records are ~365 bytes, independent of page size, and
//! each is a pure function of `(spec, site)` — any subset of sites can
//! be (re)generated in any order on any worker and the population is
//! identical.
//!
//! Calibration targets (validated by property and smoke tests):
//!
//! * request counts: bounded Pareto, tail exponent ≈ 1.22 over
//!   `[30, 4000]`, mean ≈ 110/page (the paper's 111);
//! * resource sizes: bounded Pareto, shallow tail (α ≈ 0.22) over
//!   `[120 B, 5 MB]` with ~75 % of CDN bytes-carrying resources below
//!   20 KB (§VI-E);
//! * CDN share per page: clamped Normal with `P(share > 0.5) ≈ 0.75`
//!   (Fig. 3's CCDF);
//! * provider presence: the same appearance/richness machinery as the
//!   325-page corpus (Fig. 4a top-4 > 50 %, Fig. 4b ≈ 94.8 % of pages
//!   on ≥ 2 providers);
//! * per-request H3 availability from provider adoption rates, so
//!   Google + Cloudflare dominate H3 CDN requests (Fig. 2).

use h3cdn_cdn::{Provider, ProviderRegistry};
use h3cdn_sim_core::SimRng;

use crate::corpus::{appearance_prob, richness};

/// Probability that a request to an H3-adopted provider is itself
/// served over H3 (mirrors the corpus's within-domain straggler rate).
const PER_REQUEST_H3: f64 = 0.95;

/// Size-histogram grid: lowest octave (`2^6` = 64 B).
pub const SIZE_HIST_MIN_EXP: i32 = 6;
/// Size-histogram grid: one-past-highest octave (`2^23` = 8 MiB).
pub const SIZE_HIST_MAX_EXP: i32 = 23;
/// Size-histogram grid: buckets per doubling.
pub const SIZE_HIST_BUCKETS_PER_OCTAVE: u32 = 4;
/// Number of size-histogram buckets.
pub const SIZE_HIST_BUCKETS: usize =
    (SIZE_HIST_MAX_EXP - SIZE_HIST_MIN_EXP) as usize * SIZE_HIST_BUCKETS_PER_OCTAVE as usize;

/// Parameters of a synthetic population. A pure value: two equal specs
/// generate byte-identical populations.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSpec {
    /// Master seed; every per-site stream forks from it.
    pub seed: u64,
    /// Number of sites (pages) in the population.
    pub num_pages: u64,
    /// Request-count tail exponent (bounded Pareto shape).
    pub count_alpha: f64,
    /// Minimum requests per page.
    pub count_min: u32,
    /// Maximum requests per page (truncation point).
    pub count_max: u32,
    /// Resource-size tail exponent (bounded Pareto shape).
    pub size_alpha: f64,
    /// Minimum resource size in bytes.
    pub size_min_bytes: u64,
    /// Maximum resource size in bytes (truncation point).
    pub size_max_bytes: u64,
    /// Mean of the per-page CDN share's clamped Normal.
    pub cdn_fraction_mean: f64,
    /// Standard deviation of the per-page CDN share.
    pub cdn_fraction_sd: f64,
}

impl Default for PopulationSpec {
    /// Paper-calibrated defaults at 100k pages.
    fn default() -> Self {
        PopulationSpec {
            seed: 0x1CDC_2024,
            num_pages: 100_000,
            count_alpha: 1.22,
            count_min: 30,
            count_max: 4000,
            size_alpha: 0.22,
            size_min_bytes: 120,
            size_max_bytes: 5_000_000,
            cdn_fraction_mean: 0.69,
            cdn_fraction_sd: 0.28,
        }
    }
}

impl PopulationSpec {
    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different population size.
    #[must_use]
    pub fn with_pages(mut self, num_pages: u64) -> Self {
        self.num_pages = num_pages;
        self
    }

    /// Validates parameter sanity.
    ///
    /// # Errors
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_pages == 0 {
            return Err("num_pages must be positive".to_owned());
        }
        if !(self.count_alpha.is_finite() && self.count_alpha > 0.0) {
            return Err("count_alpha must be positive".to_owned());
        }
        if self.count_min < 2 || self.count_min >= self.count_max {
            return Err("need 2 <= count_min < count_max".to_owned());
        }
        if !(self.size_alpha.is_finite() && self.size_alpha > 0.0) {
            return Err("size_alpha must be positive".to_owned());
        }
        if self.size_min_bytes == 0 || self.size_min_bytes >= self.size_max_bytes {
            return Err("need 0 < size_min_bytes < size_max_bytes".to_owned());
        }
        if !(0.0..=1.0).contains(&self.cdn_fraction_mean) || self.cdn_fraction_sd < 0.0 {
            return Err("cdn fraction parameters out of range".to_owned());
        }
        Ok(())
    }
}

/// Flat per-page aggregate — everything the population figures need,
/// nothing a packet-level visit would (no domains, no DAG). Encodes to
/// a fixed [`PageRecord::ENCODED_LEN`]-byte wire record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageRecord {
    /// Site index within the population.
    pub site: u64,
    /// Total requests on the page.
    pub requests: u32,
    /// Requests served by CDNs.
    pub cdn_requests: u32,
    /// CDN requests reachable over H3.
    pub h3_cdn_requests: u32,
    /// Bit `i` set ⇔ `Provider::ALL[i]` serves ≥ 1 request here.
    pub provider_mask: u8,
    /// CDN requests per provider, indexed like `Provider::ALL`.
    pub cdn_by_provider: [u32; 8],
    /// H3-reachable CDN requests per provider.
    pub h3_by_provider: [u32; 8],
    /// Total bytes across CDN requests.
    pub cdn_bytes: u64,
    /// CDN resource sizes on the fixed geometric grid
    /// (4 buckets/octave over `[2^6, 2^23)`; see [`PageRecord::size_bucket`]).
    pub size_hist: [u32; SIZE_HIST_BUCKETS],
}

impl PageRecord {
    /// Exact wire length of an encoded record.
    pub const ENCODED_LEN: usize = 8 + 4 + 4 + 4 + 1 + 32 + 32 + 8 + SIZE_HIST_BUCKETS * 4;

    /// Grid bucket for a resource size, matching the
    /// `analysis::QuantileSketch` grid `(min_exp 6, max_exp 23,
    /// 4/octave)` bucket for bucket, so per-page histograms merge into
    /// the population sketch without re-binning.
    #[must_use]
    pub fn size_bucket(bytes: u64) -> usize {
        if bytes == 0 {
            return 0;
        }
        let pos = ((bytes as f64).log2() - f64::from(SIZE_HIST_MIN_EXP))
            * f64::from(SIZE_HIST_BUCKETS_PER_OCTAVE);
        let idx = pos.floor();
        if idx < 0.0 {
            0
        } else if idx >= SIZE_HIST_BUCKETS as f64 {
            SIZE_HIST_BUCKETS - 1
        } else {
            idx as usize
        }
    }

    /// CDN share of the page's requests.
    #[must_use]
    pub fn cdn_fraction(&self) -> f64 {
        f64::from(self.cdn_requests) / f64::from(self.requests)
    }

    /// Number of distinct providers on the page (Fig. 4b's degree).
    #[must_use]
    pub fn provider_count(&self) -> u32 {
        self.provider_mask.count_ones()
    }

    /// Serializes to the fixed little-endian wire format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::ENCODED_LEN);
        out.extend_from_slice(&self.site.to_le_bytes());
        out.extend_from_slice(&self.requests.to_le_bytes());
        out.extend_from_slice(&self.cdn_requests.to_le_bytes());
        out.extend_from_slice(&self.h3_cdn_requests.to_le_bytes());
        out.push(self.provider_mask);
        for v in self.cdn_by_provider {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in self.h3_by_provider {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.cdn_bytes.to_le_bytes());
        for v in self.size_hist {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parses a wire record; `None` on any length mismatch.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<PageRecord> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let mut off = 0usize;
        let mut take = |n: usize| {
            let slice = bytes.get(off..off + n);
            off += n;
            slice
        };
        let u64_of = |b: &[u8]| u64::from_le_bytes(b.try_into().ok().unwrap_or([0; 8]));
        let u32_of = |b: &[u8]| u32::from_le_bytes(b.try_into().ok().unwrap_or([0; 4]));
        let site = u64_of(take(8)?);
        let requests = u32_of(take(4)?);
        let cdn_requests = u32_of(take(4)?);
        let h3_cdn_requests = u32_of(take(4)?);
        let provider_mask = *take(1)?.first()?;
        let mut cdn_by_provider = [0u32; 8];
        for v in &mut cdn_by_provider {
            *v = u32_of(take(4)?);
        }
        let mut h3_by_provider = [0u32; 8];
        for v in &mut h3_by_provider {
            *v = u32_of(take(4)?);
        }
        let cdn_bytes = u64_of(take(8)?);
        let mut size_hist = [0u32; SIZE_HIST_BUCKETS];
        for v in &mut size_hist {
            *v = u32_of(take(4)?);
        }
        Some(PageRecord {
            site,
            requests,
            cdn_requests,
            h3_cdn_requests,
            provider_mask,
            cdn_by_provider,
            h3_by_provider,
            cdn_bytes,
            size_hist,
        })
    }
}

/// Generates site `site`'s record — a pure function of `(spec, site)`,
/// independent of generation order or worker placement.
///
/// # Panics
///
/// Panics if `spec` fails [`PopulationSpec::validate`].
pub fn page_record(spec: &PopulationSpec, site: u64) -> PageRecord {
    if let Err(msg) = spec.validate() {
        panic!("invalid population spec: {msg}");
    }
    let mut rng = SimRng::seed_from(spec.seed ^ 0x504f_5055).fork(site); // "POPU"
    let registry = ProviderRegistry::paper_calibrated();

    // Request count: bounded Pareto — the heavy tail Trevisan et al.
    // observe at millions-of-domains scale, truncated so one page never
    // dwarfs the population.
    let requests = rng
        .bounded_pareto(
            spec.count_alpha,
            f64::from(spec.count_min),
            f64::from(spec.count_max),
        )
        .round() as u32;
    let requests = requests.clamp(spec.count_min, spec.count_max);

    // CDN share: clamped Normal, P(share > 0.5) ≈ 0.75 (Fig. 3).
    let frac =
        (spec.cdn_fraction_mean + spec.cdn_fraction_sd * rng.standard_normal()).clamp(0.05, 0.98);
    let cdn_requests = ((f64::from(requests) * frac).round() as u32).min(requests - 1);

    // Provider presence and selection weights: the same appearance ×
    // richness machinery as the 325-page corpus, with importance-
    // corrected weights and a dominant provider taking ~70 % of the
    // page's CDN requests (Fig. 5's skew).
    let rho = richness(&mut rng);
    let mut present: Vec<(usize, Provider)> = Provider::ALL
        .into_iter()
        .enumerate()
        .filter(|&(_, p)| rng.bernoulli((appearance_prob(p) * rho).min(0.97)))
        .collect();
    if present.is_empty() {
        present.push((1, Provider::Cloudflare));
    }
    let corrected: Vec<f64> = present
        .iter()
        .map(|&(_, p)| registry.profile(p).market_share / appearance_prob(p))
        .collect();
    let dominant = rng.weighted_index(&corrected);
    let weights: Vec<f64> = corrected
        .iter()
        .enumerate()
        .map(|(i, &w)| if i == dominant { 0.7 } else { 0.3 * w })
        .collect();

    let mut provider_mask = 0u8;
    for &(idx, _) in &present {
        provider_mask |= 1 << idx;
    }

    let mut cdn_by_provider = [0u32; 8];
    let mut h3_by_provider = [0u32; 8];
    let mut size_hist = [0u32; SIZE_HIST_BUCKETS];
    let mut h3_cdn_requests = 0u32;
    let mut cdn_bytes = 0u64;
    for _ in 0..cdn_requests {
        let pi = rng.weighted_index(&weights);
        let (idx, provider) = present[pi];
        cdn_by_provider[idx] += 1;
        let adoption = registry.profile(provider).h3_adoption;
        if rng.bernoulli(adoption * PER_REQUEST_H3) {
            h3_by_provider[idx] += 1;
            h3_cdn_requests += 1;
        }
        let size = rng
            .bounded_pareto(
                spec.size_alpha,
                spec.size_min_bytes as f64,
                spec.size_max_bytes as f64,
            )
            .round() as u64;
        cdn_bytes += size;
        size_hist[PageRecord::size_bucket(size)] += 1;
    }

    PageRecord {
        site,
        requests,
        cdn_requests,
        h3_cdn_requests,
        provider_mask,
        cdn_by_provider,
        h3_by_provider,
        cdn_bytes,
        size_hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_spec() -> PopulationSpec {
        PopulationSpec::default().with_pages(4000)
    }

    /// Least-squares slope of `ln(ccdf)` against `ln(x)` — computed
    /// inline because the layer map forbids `web → analysis`.
    fn loglog_slope(points: &[(f64, f64)]) -> f64 {
        let n = points.len() as f64;
        assert!(points.len() >= 2, "need at least two points for a fit");
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for &(x, y) in points {
            let (lx, ly) = (x.ln(), y.ln());
            sx += lx;
            sy += ly;
            sxx += lx * lx;
            sxy += lx * ly;
        }
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    }

    /// Empirical CCDF of `values` sampled at each distinct value.
    fn ccdf(values: &mut [f64]) -> Vec<(f64, f64)> {
        values.sort_by(f64::total_cmp);
        let n = values.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in values.iter().enumerate() {
            let p = 1.0 - (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 >= x => last.1 = p,
                _ => out.push((x, p)),
            }
        }
        out
    }

    #[test]
    fn request_count_tail_exponent_near_spec() {
        let spec = small_spec();
        let mut counts: Vec<f64> = (0..spec.num_pages)
            .map(|s| f64::from(page_record(&spec, s).requests))
            .collect();
        let pts: Vec<(f64, f64)> = ccdf(&mut counts)
            .into_iter()
            .filter(|&(x, p)| (60.0..=500.0).contains(&x) && p > 0.0)
            .collect();
        let slope = loglog_slope(&pts);
        // Truncation steepens the fit slightly; ±0.25 brackets it.
        assert!(
            (slope + spec.count_alpha).abs() < 0.25,
            "request-count tail slope {slope}, want ≈ -{}",
            spec.count_alpha
        );
    }

    #[test]
    fn size_tail_is_shallow_power_law() {
        let spec = small_spec().with_pages(800);
        let mut sizes: Vec<f64> = Vec::new();
        for s in 0..spec.num_pages {
            let r = page_record(&spec, s);
            for (i, &c) in r.size_hist.iter().enumerate() {
                let mid = (f64::from(SIZE_HIST_MIN_EXP)
                    + (i as f64 + 0.5) / f64::from(SIZE_HIST_BUCKETS_PER_OCTAVE))
                .exp2();
                for _ in 0..c {
                    sizes.push(mid);
                }
            }
        }
        let pts: Vec<(f64, f64)> = ccdf(&mut sizes)
            .into_iter()
            .filter(|&(x, p)| (1024.0..=500_000.0).contains(&x) && p > 0.0)
            .collect();
        let slope = loglog_slope(&pts);
        // α = 0.22 truncated at 5 MB fits ≈ -0.30 over this window; the
        // band asserts "shallow heavy tail", not the raw exponent.
        assert!(
            (-0.45..=-0.15).contains(&slope),
            "size tail slope {slope} outside the shallow-tail band"
        );
    }

    #[test]
    fn mean_requests_near_paper() {
        let spec = small_spec();
        let total: u64 = (0..spec.num_pages)
            .map(|s| u64::from(page_record(&spec, s).requests))
            .sum();
        let mean = total as f64 / spec.num_pages as f64;
        assert!(
            (mean - 110.0).abs() / 110.0 < 0.12,
            "mean requests/page {mean}"
        );
    }

    #[test]
    fn fig3_ccdf_at_half_near_75_percent() {
        let spec = small_spec();
        let over_half = (0..spec.num_pages)
            .filter(|&s| page_record(&spec, s).cdn_fraction() > 0.5)
            .count() as f64
            / spec.num_pages as f64;
        assert!((over_half - 0.75).abs() < 0.04, "CCDF(0.5) = {over_half}");
    }

    #[test]
    fn fig4_provider_degrees_match_corpus() {
        let spec = small_spec();
        let records: Vec<PageRecord> = (0..spec.num_pages).map(|s| page_record(&spec, s)).collect();
        let multi = records.iter().filter(|r| r.provider_count() >= 2).count() as f64
            / records.len() as f64;
        assert!((multi - 0.948).abs() < 0.04, "≥2 providers on {multi}");
        let mut page_share: Vec<f64> = (0..8)
            .map(|i| {
                records
                    .iter()
                    .filter(|r| r.provider_mask & (1 << i) != 0)
                    .count() as f64
                    / records.len() as f64
            })
            .collect();
        page_share.sort_by(f64::total_cmp);
        page_share.reverse();
        for share in page_share.iter().take(4) {
            assert!(*share > 0.5, "top-4 provider page share {share}");
        }
    }

    #[test]
    fn fig2_google_cloudflare_dominate_h3() {
        let spec = small_spec();
        let mut h3 = [0u64; 8];
        let mut total = 0u64;
        for s in 0..spec.num_pages {
            let r = page_record(&spec, s);
            for (i, &c) in r.h3_by_provider.iter().enumerate() {
                h3[i] += u64::from(c);
            }
            total += u64::from(r.h3_cdn_requests);
        }
        let g = h3[0] as f64 / total as f64; // Provider::ALL[0] = Google
        let cf = h3[1] as f64 / total as f64; // Provider::ALL[1] = Cloudflare
        assert!((g - 0.50).abs() < 0.08, "Google share of H3 CDN {g}");
        assert!((cf - 0.452).abs() < 0.08, "Cloudflare share of H3 CDN {cf}");
    }

    #[test]
    fn size_p75_near_20kb() {
        let spec = small_spec().with_pages(1000);
        let mut hist = vec![0u64; SIZE_HIST_BUCKETS];
        let mut total = 0u64;
        for s in 0..spec.num_pages {
            let r = page_record(&spec, s);
            for (i, &c) in r.size_hist.iter().enumerate() {
                hist[i] += u64::from(c);
                total += u64::from(c);
            }
        }
        let target = (0.75 * (total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        let mut p75 = 0.0;
        for (i, &c) in hist.iter().enumerate() {
            seen += c;
            if c > 0 && seen > target {
                p75 = (f64::from(SIZE_HIST_MIN_EXP)
                    + (i as f64 + 0.5) / f64::from(SIZE_HIST_BUCKETS_PER_OCTAVE))
                .exp2();
                break;
            }
        }
        assert!(
            (12_000.0..=30_000.0).contains(&p75),
            "P75 CDN size {p75} (grid midpoint)"
        );
    }

    #[test]
    fn record_internal_consistency() {
        let spec = small_spec();
        for s in 0..500 {
            let r = page_record(&spec, s);
            assert!(r.cdn_requests < r.requests);
            assert_eq!(
                r.cdn_by_provider.iter().map(|&c| u64::from(c)).sum::<u64>(),
                u64::from(r.cdn_requests)
            );
            assert_eq!(
                r.h3_by_provider.iter().map(|&c| u64::from(c)).sum::<u64>(),
                u64::from(r.h3_cdn_requests)
            );
            assert!(r.h3_cdn_requests <= r.cdn_requests);
            assert_eq!(
                r.size_hist.iter().map(|&c| u64::from(c)).sum::<u64>(),
                u64::from(r.cdn_requests)
            );
            for (i, &c) in r.cdn_by_provider.iter().enumerate() {
                assert!(c == 0 || r.provider_mask & (1 << i) != 0);
                assert!(r.h3_by_provider[i] <= c);
            }
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(PopulationSpec::default().validate().is_ok());
        let bad = PopulationSpec {
            num_pages: 0,
            ..PopulationSpec::default()
        };
        assert!(bad.validate().is_err());
        let bad = PopulationSpec {
            count_min: 4000,
            ..PopulationSpec::default()
        };
        assert!(bad.validate().is_err());
        let bad = PopulationSpec {
            size_alpha: f64::NAN,
            ..PopulationSpec::default()
        };
        assert!(bad.validate().is_err());
    }

    proptest! {
        #[test]
        fn regeneration_is_deterministic(seed in 0u64..1_000_000, site in 0u64..10_000) {
            let spec = PopulationSpec::default().with_seed(seed);
            let a = page_record(&spec, site);
            let b = page_record(&spec, site);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn different_seeds_differ(seed in 0u64..1_000_000) {
            let a = PopulationSpec::default().with_seed(seed);
            let b = PopulationSpec::default().with_seed(seed ^ 0x5EED);
            // Across 16 sites at least one record must differ.
            let differs = (0..16u64).any(|s| page_record(&a, s) != page_record(&b, s));
            prop_assert!(differs);
        }

        #[test]
        fn encode_decode_roundtrips(seed in 0u64..100_000, site in 0u64..1_000) {
            let spec = PopulationSpec::default().with_seed(seed);
            let r = page_record(&spec, site);
            let bytes = r.encode();
            prop_assert_eq!(bytes.len(), PageRecord::ENCODED_LEN);
            let back = PageRecord::decode(&bytes).expect("roundtrip");
            prop_assert_eq!(back, r);
        }

        #[test]
        fn ccdf_of_cdn_share_is_monotone(seed in 0u64..50_000) {
            let spec = PopulationSpec::default().with_seed(seed).with_pages(300);
            // Grid CCDF over the share axis must be nonincreasing.
            let shares: Vec<f64> = (0..spec.num_pages)
                .map(|s| page_record(&spec, s).cdn_fraction())
                .collect();
            let grid: Vec<f64> = (0..=20)
                .map(|k| {
                    let thr = f64::from(k) / 20.0;
                    shares.iter().filter(|&&f| f > thr).count() as f64 / shares.len() as f64
                })
                .collect();
            for w in grid.windows(2) {
                prop_assert!(w[0] >= w[1], "CCDF must be nonincreasing: {:?}", grid);
            }
        }
    }

    #[test]
    fn decode_rejects_wrong_lengths() {
        let r = page_record(&PopulationSpec::default(), 3);
        let bytes = r.encode();
        assert!(PageRecord::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut long = bytes.clone();
        long.push(0);
        assert!(PageRecord::decode(&long).is_none());
        assert!(PageRecord::decode(&[]).is_none());
    }
}
