//! Workload specification.

use serde::{Deserialize, Serialize};

/// Parameters of corpus generation. [`WorkloadSpec::default`] is the
/// paper-calibrated configuration; experiments vary only `seed` (and
/// occasionally `num_pages` for benches).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Master seed; every random draw derives from it.
    pub seed: u64,
    /// Number of pages (the study's 325 H3-reachable sites).
    pub num_pages: usize,
    /// Mean requests per page (36 057 / 325 ≈ 111).
    pub mean_requests_per_page: f64,
    /// Minimum requests per page.
    pub min_requests_per_page: usize,
    /// Maximum requests per page.
    pub max_requests_per_page: usize,
    /// Mean of the per-page CDN-resource fraction (Normal, clamped).
    pub cdn_fraction_mean: f64,
    /// Standard deviation of the per-page CDN-resource fraction.
    pub cdn_fraction_sd: f64,
    /// Log-normal `mu` of CDN resource body size in bytes.
    pub size_log_mu: f64,
    /// Log-normal `sigma` of CDN resource body size.
    pub size_log_sigma: f64,
    /// Cap on a single resource body in bytes.
    pub max_resource_bytes: u64,
    /// Mean server processing time per request, milliseconds.
    pub mean_processing_ms: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 0x1CDC_2024,
            num_pages: 325,
            mean_requests_per_page: 111.0,
            min_requests_per_page: 20,
            max_requests_per_page: 400,
            cdn_fraction_mean: 0.69,
            // Clamped Normal(0.69, 0.28): mean ≈ 0.67 (Table II) and
            // P(fraction > 0.5) ≈ 0.75 (Fig. 3) after clamping to
            // [0.05, 0.98].
            cdn_fraction_sd: 0.28,
            // 75th percentile at mu + 0.674·sigma = ln(20 000):
            // sigma = 1.3 → mu = 9.9 − 0.876 ≈ 9.02.
            size_log_mu: 9.02,
            size_log_sigma: 1.3,
            max_resource_bytes: 5 * 1024 * 1024,
            mean_processing_ms: 4.0,
        }
    }
}

impl WorkloadSpec {
    /// Returns a copy with a different seed (for multi-run averaging).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy scaled down to `num_pages` (for benches and quick
    /// tests).
    pub fn with_pages(mut self, num_pages: usize) -> Self {
        self.num_pages = num_pages;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_pages == 0 {
            return Err("num_pages must be positive".into());
        }
        if self.min_requests_per_page > self.max_requests_per_page {
            return Err("min_requests_per_page exceeds max_requests_per_page".into());
        }
        if !(0.0..=1.0).contains(&self.cdn_fraction_mean) {
            return Err("cdn_fraction_mean must be in [0, 1]".into());
        }
        if self.cdn_fraction_sd < 0.0 {
            return Err("cdn_fraction_sd must be non-negative".into());
        }
        if self.size_log_sigma < 0.0 {
            return Err("size_log_sigma must be non-negative".into());
        }
        if self.mean_processing_ms < 0.0 {
            return Err("mean_processing_ms must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paper_sized() {
        let spec = WorkloadSpec::default();
        spec.validate().expect("default spec valid");
        assert_eq!(spec.num_pages, 325);
        assert!((spec.mean_requests_per_page * spec.num_pages as f64 - 36_075.0).abs() < 100.0);
    }

    #[test]
    fn builders_adjust_fields() {
        let spec = WorkloadSpec::default().with_seed(9).with_pages(10);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.num_pages, 10);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let spec = WorkloadSpec {
            num_pages: 0,
            ..WorkloadSpec::default()
        };
        assert!(spec.validate().is_err());

        let spec = WorkloadSpec {
            min_requests_per_page: 500,
            ..WorkloadSpec::default()
        };
        assert!(spec.validate().is_err());

        let spec = WorkloadSpec {
            cdn_fraction_mean: 1.5,
            ..WorkloadSpec::default()
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn spec_serializes_round_trip() {
        let spec = WorkloadSpec::default();
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: WorkloadSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.seed, spec.seed);
        assert_eq!(back.num_pages, spec.num_pages);
    }
}
