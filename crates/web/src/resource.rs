//! Resources and webpages.

use std::collections::BTreeSet;

use h3cdn_cdn::Provider;

use crate::domains::DomainId;

/// The content type of a resource (drives size and discovery depth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// The root HTML document.
    Html,
    /// JavaScript.
    Script,
    /// CSS.
    Stylesheet,
    /// Raster/vector images.
    Image,
    /// Web fonts.
    Font,
    /// Audio/video segments.
    Media,
    /// XHR/JSON/other.
    Other,
}

/// Where a resource is hosted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hosting {
    /// Served by a CDN edge.
    Cdn {
        /// The hosting provider.
        provider: Provider,
        /// Whether this resource is reachable over H3 (per-resource,
        /// because provider deployments are partial — the paper's
        /// "number of H3-enabled CDN resources" is exactly this count).
        h3_available: bool,
    },
    /// Served by the site's origin web service.
    Origin {
        /// Whether the origin speaks H3.
        h3_available: bool,
        /// Whether the origin only speaks HTTP/1.x (Table II "Others").
        h1_only: bool,
    },
}

impl Hosting {
    /// Whether the resource is CDN-hosted.
    pub fn is_cdn(&self) -> bool {
        matches!(self, Hosting::Cdn { .. })
    }

    /// The CDN provider, if any.
    pub fn provider(&self) -> Option<Provider> {
        match self {
            Hosting::Cdn { provider, .. } => Some(*provider),
            Hosting::Origin { .. } => None,
        }
    }

    /// Whether the resource can be fetched over H3.
    pub fn h3_available(&self) -> bool {
        match *self {
            Hosting::Cdn { h3_available, .. } => h3_available,
            Hosting::Origin { h3_available, .. } => h3_available,
        }
    }
}

/// One fetchable resource on a page.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Globally unique request id (HAR entry id).
    pub id: u64,
    /// Hosting domain.
    pub domain: DomainId,
    /// Content type.
    pub kind: ResourceKind,
    /// Response body bytes.
    pub body_bytes: u64,
    /// Compressed response-header bytes.
    pub response_header_bytes: u64,
    /// Compressed request-header bytes.
    pub request_header_bytes: u64,
    /// Server processing time, microseconds.
    pub processing_us: u64,
    /// Discovery wave: 0 = referenced by the HTML, k > 0 = discovered
    /// when its parent (a wave k−1 resource) finishes.
    pub depth: u8,
    /// Index (within the page's resource list) of the resource whose
    /// completion reveals this one; `None` for wave-0.
    pub parent: Option<usize>,
    /// Hosting details.
    pub hosting: Hosting,
}

/// A webpage: its root document plus sub-resources.
#[derive(Debug, Clone)]
pub struct Webpage {
    /// Index of the site in the corpus (stable across seeds).
    pub site: usize,
    /// The site's origin domain (hosts the root HTML).
    pub origin_domain: DomainId,
    /// All resources; index 0 is the root HTML.
    pub resources: Vec<Resource>,
}

impl Webpage {
    /// Total number of requests the page makes.
    pub fn request_count(&self) -> usize {
        self.resources.len()
    }

    /// CDN-hosted resources.
    pub fn cdn_resources(&self) -> impl Iterator<Item = &Resource> {
        self.resources.iter().filter(|r| r.hosting.is_cdn())
    }

    /// Fraction of resources hosted by CDNs (Fig. 3's statistic).
    pub fn cdn_fraction(&self) -> f64 {
        self.cdn_resources().count() as f64 / self.request_count() as f64
    }

    /// Distinct CDN providers used (Fig. 4's statistic).
    pub fn providers_used(&self) -> BTreeSet<Provider> {
        self.cdn_resources()
            .filter_map(|r| r.hosting.provider())
            .collect()
    }

    /// Number of CDN resources hosted by `provider` (Fig. 5's statistic).
    pub fn cdn_count_for(&self, provider: Provider) -> usize {
        self.cdn_resources()
            .filter(|r| r.hosting.provider() == Some(provider))
            .count()
    }

    /// Number of H3-enabled CDN resources (Fig. 6a's grouping variable).
    pub fn h3_enabled_cdn_count(&self) -> usize {
        self.cdn_resources()
            .filter(|r| r.hosting.h3_available())
            .count()
    }

    /// Distinct CDN domains referenced by the page.
    pub fn cdn_domains(&self) -> BTreeSet<DomainId> {
        self.cdn_resources().map(|r| r.domain).collect()
    }

    /// Total body bytes across all resources.
    pub fn total_bytes(&self) -> u64 {
        self.resources.iter().map(|r| r.body_bytes).sum()
    }

    /// Largest discovery depth on the page.
    pub fn max_depth(&self) -> u8 {
        self.resources.iter().map(|r| r.depth).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdn_resource(id: u64, provider: Provider, h3: bool) -> Resource {
        Resource {
            id,
            domain: DomainId(id),
            kind: ResourceKind::Image,
            body_bytes: 1000,
            response_header_bytes: 250,
            request_header_bytes: 300,
            processing_us: 2000,
            depth: 0,
            parent: None,
            hosting: Hosting::Cdn {
                provider,
                h3_available: h3,
            },
        }
    }

    fn origin_resource(id: u64) -> Resource {
        Resource {
            id,
            domain: DomainId(0),
            kind: ResourceKind::Html,
            body_bytes: 40_000,
            response_header_bytes: 250,
            request_header_bytes: 300,
            processing_us: 5000,
            depth: 0,
            parent: None,
            hosting: Hosting::Origin {
                h3_available: false,
                h1_only: false,
            },
        }
    }

    fn page() -> Webpage {
        Webpage {
            site: 0,
            origin_domain: DomainId(0),
            resources: vec![
                origin_resource(1),
                cdn_resource(2, Provider::Google, true),
                cdn_resource(3, Provider::Google, true),
                cdn_resource(4, Provider::Cloudflare, false),
            ],
        }
    }

    #[test]
    fn page_statistics() {
        let p = page();
        assert_eq!(p.request_count(), 4);
        assert!((p.cdn_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(p.providers_used().len(), 2);
        assert_eq!(p.cdn_count_for(Provider::Google), 2);
        assert_eq!(p.cdn_count_for(Provider::Fastly), 0);
        assert_eq!(p.h3_enabled_cdn_count(), 2);
        assert_eq!(p.cdn_domains().len(), 3);
        assert_eq!(p.total_bytes(), 43_000);
        assert_eq!(p.max_depth(), 0);
    }

    #[test]
    fn hosting_predicates() {
        let cdn = Hosting::Cdn {
            provider: Provider::Fastly,
            h3_available: true,
        };
        let origin = Hosting::Origin {
            h3_available: false,
            h1_only: true,
        };
        assert!(cdn.is_cdn() && !origin.is_cdn());
        assert_eq!(cdn.provider(), Some(Provider::Fastly));
        assert_eq!(origin.provider(), None);
        assert!(cdn.h3_available());
        assert!(!origin.h3_available());
    }
}
