//! Corpus generation.
//!
//! Every draw derives from the spec seed via forked streams, so the
//! corpus is a pure function of the [`WorkloadSpec`] — independent of
//! which protocol later fetches it, as required for paired H2/H3 runs.

use h3cdn_cdn::{Provider, ProviderRegistry};
use h3cdn_sim_core::SimRng;

use crate::domains::{DomainId, DomainTable};
use crate::resource::{Hosting, Resource, ResourceKind, Webpage};
use crate::spec::WorkloadSpec;

/// Per-provider base probability of appearing on a page, calibrated so
/// that — after the per-page richness factor below — the top four
/// providers each exceed 50 % (Fig. 4a) and ≈ 95 % of pages use at
/// least two providers (Fig. 4b: 94.8 %).
pub(crate) fn appearance_prob(p: Provider) -> f64 {
    match p {
        Provider::Google => 0.80,
        Provider::Cloudflare => 0.86,
        Provider::Amazon => 0.65,
        Provider::Fastly => 0.50,
        Provider::Akamai => 0.68,
        Provider::Microsoft => 0.25,
        Provider::QuicCloud => 0.055,
        Provider::Other => 0.39,
    }
}

/// Per-page third-party richness: sparse sites use one or two providers,
/// widget-heavy sites use most of them. This heterogeneity is what
/// separates Table III's high- and low-sharing groups (the paper found
/// 4.16 vs 2.58 average providers) and spreads Fig. 4(b)'s histogram.
/// Log-normal with mean ≈ 1, clamped.
pub(crate) fn richness(rng: &mut SimRng) -> f64 {
    rng.log_normal(-0.07, 0.38).clamp(0.55, 1.9)
}

/// Probability that a resource on an H3-enabled domain is itself
/// reachable over H3. Provider deployments are *mostly* uniform per
/// domain, but a few stragglers (separate backends, unmigrated paths)
/// remain H2-only — they are what forces the browser to open a second
/// (H2) connection to an otherwise-H3 domain in H3 mode, producing the
/// reused-connection gap of Fig. 7.
const WITHIN_DOMAIN_H3: f64 = 0.95;

/// Probability a non-CDN sub-resource targets the site's own origin
/// rather than a third-party service (trackers, tag managers, APIs).
const OWN_ORIGIN_SHARE: f64 = 0.15;

/// Probability a third-party service domain speaks H3. Own origins
/// always do: the paper's 325 sites were *selected* for H3
/// reachability, so every landing page's origin supports H3 — which is
/// why enabling H3 accelerates the root document on the critical path.
const SERVICE_H3: f64 = 0.05;

/// Probability a (non-H3) third-party service domain only speaks
/// HTTP/1.x (Table II's "Others" live almost entirely here).
const SERVICE_H1_ONLY: f64 = 0.23;

/// Third-party service domains used per page.
const SERVICES_PER_PAGE: std::ops::RangeInclusive<u64> = 2..=4;

/// Resource-kind sampling weights for CDN sub-resources.
const KIND_WEIGHTS: [(ResourceKind, f64); 6] = [
    (ResourceKind::Image, 0.45),
    (ResourceKind::Script, 0.25),
    (ResourceKind::Stylesheet, 0.08),
    (ResourceKind::Font, 0.06),
    (ResourceKind::Media, 0.04),
    (ResourceKind::Other, 0.12),
];

/// Size-shift of a resource kind relative to the base log-normal `mu`:
/// stylesheets/scripts are small text, fonts middling, images the bulk,
/// media segments the heavy tail. Weighted by KIND_WEIGHTS these shifts
/// average ≈ 0, preserving the corpus-level size calibration (75 % of
/// CDN resources below 20 KB).
fn kind_mu_shift(kind: ResourceKind) -> f64 {
    match kind {
        ResourceKind::Html => 0.0,
        ResourceKind::Script => -0.25,
        ResourceKind::Stylesheet => -0.55,
        ResourceKind::Image => 0.12,
        ResourceKind::Font => 0.25,
        ResourceKind::Media => 1.35,
        ResourceKind::Other => -0.30,
    }
}

/// A generated corpus: pages plus the domain table describing them.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All pages, index-aligned with site numbers.
    pub pages: Vec<Webpage>,
    /// Domain registry (shared pool + per-site domains).
    pub domains: DomainTable,
    /// The spec the corpus was generated from.
    pub spec: WorkloadSpec,
}

impl Corpus {
    /// Total requests across all pages.
    pub fn total_requests(&self) -> usize {
        self.pages.iter().map(Webpage::request_count).sum()
    }

    /// Total CDN requests across all pages.
    pub fn cdn_requests(&self) -> usize {
        self.pages.iter().map(|p| p.cdn_resources().count()).sum()
    }

    /// Overall CDN fraction (Table II's 67 %).
    pub fn cdn_fraction(&self) -> f64 {
        self.cdn_requests() as f64 / self.total_requests() as f64
    }
}

/// Generates a corpus from `spec`.
///
/// # Panics
///
/// Panics if `spec` fails [`WorkloadSpec::validate`].
pub fn generate(spec: &WorkloadSpec) -> Corpus {
    if let Err(msg) = spec.validate() {
        panic!("invalid workload spec: {msg}");
    }
    let registry = ProviderRegistry::paper_calibrated();
    let mut domains = DomainTable::with_shared_pool();
    let shared_h3 = shared_cdn_h3_map(spec.seed, &registry, &domains);
    let service_caps = service_capability_map(spec.seed, &domains);
    let master = SimRng::seed_from(spec.seed).fork(0x776f_726b); // "work"
    let mut next_id: u64 = 1;
    let mut pages = Vec::with_capacity(spec.num_pages);

    for site in 0..spec.num_pages {
        let mut rng = master.fork(site as u64);
        pages.push(generate_page(
            spec,
            &registry,
            &mut domains,
            &shared_h3,
            &service_caps,
            site,
            &mut next_id,
            &mut rng,
        ));
    }

    Corpus {
        pages,
        domains,
        spec: spec.clone(),
    }
}

/// Whether `domain` (hosted by a provider with the given adoption rate)
/// is H3-enabled. Stable across pages: the decision derives from the
/// corpus seed and the domain id only, because a given edge deployment
/// either runs H3 or does not, regardless of who is browsing.
fn domain_is_h3(spec_seed: u64, domain: DomainId, adoption: f64) -> bool {
    SimRng::seed_from(spec_seed ^ 0x4833_D0AA)
        .fork(domain.0)
        .bernoulli(adoption)
}

/// Precomputed H3 capability for the shared CDN pool. Stratified per
/// provider — exactly `round(adoption · pool)` domains are H3 — so one
/// seed's realised adoption tracks the Table II calibration instead of
/// swinging on a handful of Bernoulli flips over small pools.
fn shared_cdn_h3_map(
    spec_seed: u64,
    registry: &ProviderRegistry,
    domains: &DomainTable,
) -> std::collections::HashMap<DomainId, bool> {
    let mut map = std::collections::HashMap::new();
    let mut rng = SimRng::seed_from(spec_seed ^ 0x5348_4D50);
    for profile in registry.profiles() {
        let mut pool: Vec<DomainId> = domains.shared_domains(profile.provider).to_vec();
        rng.shuffle(&mut pool);
        let k = (profile.h3_adoption * pool.len() as f64).round() as usize;
        for (i, d) in pool.into_iter().enumerate() {
            map.insert(d, i < k);
        }
    }
    map
}

/// Protocol capability of the shared service pool, stratified the same
/// way as the CDN pool: exactly `round(SERVICE_H3 · pool)` domains are
/// H3 and `round(SERVICE_H1_ONLY · pool)` of the rest are HTTP/1.x-only.
fn service_capability_map(
    spec_seed: u64,
    domains: &DomainTable,
) -> std::collections::HashMap<DomainId, (bool, bool)> {
    let mut map = std::collections::HashMap::new();
    let mut rng = SimRng::seed_from(spec_seed ^ 0x5356_4350);
    let mut pool: Vec<DomainId> = domains.shared_services().to_vec();
    rng.shuffle(&mut pool);
    let k_h3 = (SERVICE_H3 * pool.len() as f64).round() as usize;
    let k_h1 = (SERVICE_H1_ONLY * pool.len() as f64).round() as usize;
    for (i, d) in pool.into_iter().enumerate() {
        let h3 = i < k_h3;
        let h1_only = !h3 && i < k_h3 + k_h1;
        map.insert(d, (h3, h1_only));
    }
    map
}

#[allow(clippy::too_many_arguments)] // internal builder; the context IS the arguments
fn generate_page(
    spec: &WorkloadSpec,
    registry: &ProviderRegistry,
    domains: &mut DomainTable,
    shared_h3: &std::collections::HashMap<DomainId, bool>,
    service_caps: &std::collections::HashMap<DomainId, (bool, bool)>,
    site: usize,
    next_id: &mut u64,
    rng: &mut SimRng,
) -> Webpage {
    let origin_domain = domains.add_origin(site);

    // Request count: log-normal around the paper's 111/page mean.
    let sigma = 0.55;
    let mu = spec.mean_requests_per_page.ln() - sigma * sigma / 2.0;
    let n = (rng.log_normal(mu, sigma).round() as usize)
        .clamp(spec.min_requests_per_page, spec.max_requests_per_page);

    // CDN fraction: clamped Normal — mean ≈ 0.67, P(>0.5) ≈ 0.75 (Fig. 3).
    let frac =
        (spec.cdn_fraction_mean + spec.cdn_fraction_sd * rng.standard_normal()).clamp(0.05, 0.98);
    let n_cdn = ((n as f64 * frac).round() as usize).min(n - 1);
    let n_origin = n - n_cdn; // ≥ 1: the root HTML

    // Providers appearing on this page, modulated by its richness.
    let rho = richness(rng);
    let mut present: Vec<Provider> = Provider::ALL
        .into_iter()
        .filter(|&p| rng.bernoulli((appearance_prob(p) * rho).min(0.97)))
        .collect();
    if present.is_empty() {
        present.push(Provider::Cloudflare);
    }
    // Importance-corrected selection weights keep expected per-provider
    // request shares near market share despite uneven appearance.
    let corrected: Vec<f64> = present
        .iter()
        .map(|&p| registry.profile(p).market_share / appearance_prob(p))
        .collect();
    // One provider dominates each page (Fig. 5's skew: roughly half the
    // pages using Cloudflare/Google put >10 resources on them, the rest
    // use them lightly): the dominant provider takes ~70 % of the page's
    // CDN resources, the others share the remainder.
    let dominant = rng.weighted_index(&corrected);
    let weights: Vec<f64> = corrected
        .iter()
        .enumerate()
        .map(|(i, &w)| if i == dominant { 0.7 } else { 0.3 * w })
        .collect();

    // Domains each present provider contributes to this page. Shared
    // pools are sampled Zipf-style (weight 1/rank): the head domains
    // (fonts.googleapis.com, cdnjs.cloudflare.com, …) appear on most
    // pages, the tail rarely — which is what makes cross-page session
    // resumption to them common (Fig. 8 / Table III).
    let page_domains: Vec<Vec<DomainId>> = present
        .iter()
        .map(|&p| {
            let mean = registry.profile(p).mean_domains_per_page;
            let base = mean.floor() as usize;
            let count = (base + usize::from(rng.bernoulli(mean - base as f64))).max(1);
            let pool = domains.shared_domains(p).to_vec();
            let weights: Vec<f64> = (0..pool.len()).map(|i| 1.0 / (i + 1) as f64).collect();
            let mut picked: Vec<DomainId> = Vec::new();
            let mut guard = 0;
            while picked.len() < count.min(pool.len()) && guard < 200 {
                guard += 1;
                let d = pool[rng.weighted_index(&weights)];
                if !picked.contains(&d) {
                    picked.push(d);
                }
            }
            if rng.bernoulli(0.2) {
                picked.push(domains.add_private_cdn(site, p));
            }
            picked
        })
        .collect();

    // Third-party service domains used by this page.
    let service_count = rng.range_inclusive(*SERVICES_PER_PAGE.start(), *SERVICES_PER_PAGE.end());
    let mut service_pool: Vec<DomainId> = domains.shared_services().to_vec();
    rng.shuffle(&mut service_pool);
    let services: Vec<DomainId> = service_pool
        .into_iter()
        .take(service_count as usize)
        .collect();

    let mut resources = Vec::with_capacity(n);
    // Root HTML first.
    resources.push(Resource {
        id: *next_id,
        domain: origin_domain,
        kind: ResourceKind::Html,
        body_bytes: rng.range_inclusive(25_000, 90_000),
        response_header_bytes: rng.range_inclusive(220, 420),
        request_header_bytes: rng.range_inclusive(260, 480),
        processing_us: (rng.exponential(spec.mean_processing_ms) * 1_000.0) as u64 + 500,
        depth: 0,
        parent: None,
        hosting: Hosting::Origin {
            // The corpus is the paper's H3-reachable site list: every
            // landing page's own origin supports H3.
            h3_available: true,
            h1_only: false,
        },
    });
    *next_id += 1;

    // CDN sub-resources.
    for _ in 0..n_cdn {
        let pi = rng.weighted_index(&weights);
        let provider = present[pi];
        let profile = registry.profile(provider);
        let domain = *rng.choose(&page_domains[pi]).expect("provider has domains");
        let kind_weights: Vec<f64> = KIND_WEIGHTS.iter().map(|&(_, w)| w).collect();
        let kind = KIND_WEIGHTS[rng.weighted_index(&kind_weights)].0;
        let body = (rng.log_normal(spec.size_log_mu + kind_mu_shift(kind), spec.size_log_sigma)
            as u64)
            .clamp(120, spec.max_resource_bytes);
        resources.push(Resource {
            id: *next_id,
            domain,
            kind,
            body_bytes: body,
            response_header_bytes: rng.range_inclusive(180, 380),
            request_header_bytes: rng.range_inclusive(240, 420),
            processing_us: (rng.exponential(spec.mean_processing_ms) * 1_000.0) as u64 + 300,
            depth: 1, // refined below
            parent: Some(0),
            hosting: Hosting::Cdn {
                provider,
                h3_available: shared_h3
                    .get(&domain)
                    .copied()
                    .unwrap_or_else(|| domain_is_h3(spec.seed, domain, profile.h3_adoption))
                    && rng.bernoulli(WITHIN_DOMAIN_H3),
            },
        });
        *next_id += 1;
    }

    // Non-CDN sub-resources: a few first-party XHRs plus a majority of
    // third-party service calls (analytics, tags, ads).
    for _ in 0..n_origin - 1 {
        let own = rng.bernoulli(OWN_ORIGIN_SHARE);
        let (domain, h3_available, h1_only, mu_shift) = if own {
            (origin_domain, true, false, 0.0)
        } else {
            let d = *rng.choose(&services).expect("services sampled");
            let (h3, h1) = service_caps[&d];
            (d, h3, h1, -0.5) // service responses are small JSON/pixels
        };
        let body = (rng.log_normal(spec.size_log_mu + mu_shift, spec.size_log_sigma) as u64)
            .clamp(120, spec.max_resource_bytes);
        resources.push(Resource {
            id: *next_id,
            domain,
            kind: ResourceKind::Other,
            body_bytes: body,
            response_header_bytes: rng.range_inclusive(180, 380),
            request_header_bytes: rng.range_inclusive(240, 420),
            processing_us: (rng.exponential(spec.mean_processing_ms) * 1_000.0) as u64 + 300,
            depth: 1,
            parent: Some(0),
            hosting: Hosting::Origin {
                h3_available,
                h1_only,
            },
        });
        *next_id += 1;
    }

    // Discovery waves: 70 % of sub-resources sit in the HTML (wave 1),
    // 25 % are revealed by a wave-1 parent, 5 % by a wave-2 parent.
    assign_waves(&mut resources, rng);

    Webpage {
        site,
        origin_domain,
        resources,
    }
}

#[allow(clippy::needless_range_loop)] // i indexes two parallel structures
fn assign_waves(resources: &mut [Resource], rng: &mut SimRng) {
    let sub_count = resources.len() - 1;
    if sub_count == 0 {
        return;
    }
    // First pass: choose each sub-resource's wave.
    let mut wave_of: Vec<u8> = Vec::with_capacity(sub_count);
    for _ in 0..sub_count {
        let r = rng.next_f64();
        wave_of.push(if r < 0.70 {
            1
        } else if r < 0.95 {
            2
        } else {
            3
        });
    }
    // Guarantee wave 1 is non-empty so deeper waves have parents.
    wave_of[0] = 1;
    let wave1: Vec<usize> = (0..sub_count).filter(|&i| wave_of[i] == 1).collect();
    let wave2: Vec<usize> = (0..sub_count).filter(|&i| wave_of[i] == 2).collect();
    for i in 0..sub_count {
        let idx = i + 1; // offset past the root
        match wave_of[i] {
            1 => {
                resources[idx].depth = 1;
                resources[idx].parent = Some(0);
            }
            2 => {
                resources[idx].depth = 2;
                resources[idx].parent = Some(1 + *rng.choose(&wave1).expect("wave1 non-empty"));
            }
            _ => {
                resources[idx].depth = 3;
                let parents = if wave2.is_empty() { &wave1 } else { &wave2 };
                resources[idx].parent = Some(1 + *rng.choose(parents).expect("parents exist"));
                if wave2.is_empty() {
                    resources[idx].depth = 2;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        generate(&WorkloadSpec::default())
    }

    #[test]
    fn deterministic_given_seed() {
        let a = corpus();
        let b = corpus();
        assert_eq!(a.total_requests(), b.total_requests());
        let ids_a: Vec<u64> = a.pages[7].resources.iter().map(|r| r.id).collect();
        let ids_b: Vec<u64> = b.pages[7].resources.iter().map(|r| r.id).collect();
        assert_eq!(ids_a, ids_b);
        let sizes_a: Vec<u64> = a.pages[7].resources.iter().map(|r| r.body_bytes).collect();
        let sizes_b: Vec<u64> = b.pages[7].resources.iter().map(|r| r.body_bytes).collect();
        assert_eq!(sizes_a, sizes_b);
        let c = generate(&WorkloadSpec::default().with_seed(1));
        assert_ne!(
            a.pages[7].resources.len(),
            0,
            "sanity: pages are non-trivial"
        );
        assert_ne!(
            c.pages[7]
                .resources
                .iter()
                .map(|r| r.body_bytes)
                .collect::<Vec<_>>(),
            sizes_a,
            "different seeds give different corpora"
        );
    }

    #[test]
    fn total_requests_near_paper() {
        let c = corpus();
        let total = c.total_requests() as f64;
        assert!(
            (total - 36_057.0).abs() / 36_057.0 < 0.10,
            "total requests {total}"
        );
    }

    #[test]
    fn cdn_fraction_near_67_percent() {
        let c = corpus();
        let f = c.cdn_fraction();
        assert!((f - 0.67).abs() < 0.04, "CDN fraction {f}");
    }

    #[test]
    fn fig3_ccdf_at_half_is_75_percent() {
        let c = corpus();
        let over_half =
            c.pages.iter().filter(|p| p.cdn_fraction() > 0.5).count() as f64 / c.pages.len() as f64;
        assert!((over_half - 0.75).abs() < 0.06, "CCDF(0.5) = {over_half}");
    }

    #[test]
    fn fig4b_at_least_two_providers() {
        let c = corpus();
        let multi = c
            .pages
            .iter()
            .filter(|p| p.providers_used().len() >= 2)
            .count() as f64
            / c.pages.len() as f64;
        assert!((multi - 0.948).abs() < 0.04, "≥2 providers on {multi}");
    }

    #[test]
    fn fig4a_top_four_providers_exceed_half() {
        let c = corpus();
        let mut probs: Vec<(Provider, f64)> = Provider::ALL
            .into_iter()
            .map(|p| {
                let k = c
                    .pages
                    .iter()
                    .filter(|page| page.providers_used().contains(&p))
                    .count();
                (p, k as f64 / c.pages.len() as f64)
            })
            .collect();
        probs.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (p, prob) in probs.iter().take(4) {
            assert!(*prob > 0.5, "top-4 provider {p} appears on {prob}");
        }
    }

    #[test]
    fn table_ii_h3_fractions() {
        let c = corpus();
        let cdn_total: usize = c.cdn_requests();
        let cdn_h3: usize = c.pages.iter().map(Webpage::h3_enabled_cdn_count).sum();
        let f = cdn_h3 as f64 / cdn_total as f64;
        assert!((f - 0.384).abs() < 0.03, "CDN H3 fraction {f}");
        // Non-CDN H3 ≈ 20.7 %.
        let (mut non_cdn, mut non_cdn_h3, mut non_cdn_h1) = (0usize, 0usize, 0usize);
        for page in &c.pages {
            for r in &page.resources {
                if let Hosting::Origin {
                    h3_available,
                    h1_only,
                } = r.hosting
                {
                    non_cdn += 1;
                    non_cdn_h3 += usize::from(h3_available);
                    non_cdn_h1 += usize::from(h1_only);
                }
            }
        }
        let f3 = non_cdn_h3 as f64 / non_cdn as f64;
        let f1 = non_cdn_h1 as f64 / non_cdn as f64;
        assert!((f3 - 0.207).abs() < 0.04, "non-CDN H3 {f3}");
        assert!((f1 - 0.187).abs() < 0.055, "non-CDN H1-only {f1}");
    }

    #[test]
    fn fig2_google_and_cloudflare_dominate_h3() {
        let c = corpus();
        let mut h3_by_provider: std::collections::HashMap<Provider, usize> = Default::default();
        let mut h3_total = 0usize;
        for page in &c.pages {
            for r in page.cdn_resources() {
                if let Hosting::Cdn {
                    provider,
                    h3_available: true,
                } = r.hosting
                {
                    *h3_by_provider.entry(provider).or_default() += 1;
                    h3_total += 1;
                }
            }
        }
        let g = h3_by_provider[&Provider::Google] as f64 / h3_total as f64;
        let cf = h3_by_provider[&Provider::Cloudflare] as f64 / h3_total as f64;
        assert!((g - 0.50).abs() < 0.06, "Google share of H3 CDN {g}");
        assert!((cf - 0.452).abs() < 0.06, "Cloudflare share of H3 CDN {cf}");
    }

    #[test]
    fn sizes_p75_below_20kb() {
        let c = corpus();
        let mut sizes: Vec<u64> = c
            .pages
            .iter()
            .flat_map(|p| p.cdn_resources().map(|r| r.body_bytes))
            .collect();
        sizes.sort_unstable();
        let p75 = sizes[sizes.len() * 3 / 4];
        assert!(
            (14_000..=26_000).contains(&p75),
            "75th percentile CDN size {p75}"
        );
    }

    #[test]
    fn fig5_cloudflare_google_pages_carry_many_resources() {
        let c = corpus();
        for p in [Provider::Cloudflare, Provider::Google] {
            let using: Vec<_> = c
                .pages
                .iter()
                .filter(|page| page.providers_used().contains(&p))
                .collect();
            let over10 = using
                .iter()
                .filter(|page| page.cdn_count_for(p) > 10)
                .count() as f64
                / using.len() as f64;
            assert!(
                (0.35..=0.85).contains(&over10),
                "{p}: fraction of its pages with >10 resources = {over10}"
            );
        }
    }

    #[test]
    fn parents_form_valid_discovery_dag() {
        let c = corpus();
        for page in &c.pages {
            assert_eq!(page.resources[0].depth, 0, "root is wave 0");
            assert!(page.resources[0].parent.is_none());
            for (i, r) in page.resources.iter().enumerate().skip(1) {
                let parent = r.parent.expect("sub-resources have parents");
                assert!(parent < page.resources.len(), "parent in range");
                assert_ne!(parent, i, "no self-parenting");
                assert_eq!(
                    page.resources[parent].depth,
                    r.depth - 1,
                    "parent one wave earlier"
                );
            }
        }
    }

    #[test]
    fn shared_domains_recur_across_pages() {
        let c = corpus();
        let mut pages_per_domain: std::collections::HashMap<DomainId, usize> = Default::default();
        for page in &c.pages {
            for d in page.cdn_domains() {
                if c.domains.is_shared(d) {
                    *pages_per_domain.entry(d).or_default() += 1;
                }
            }
        }
        let reused = pages_per_domain.values().filter(|&&n| n >= 2).count();
        assert!(
            reused >= 50,
            "at least ~58 shared domains reused across pages, got {reused}"
        );
    }

    #[test]
    fn small_corpus_for_benches_generates_quickly() {
        let c = generate(&WorkloadSpec::default().with_pages(10).with_seed(3));
        assert_eq!(c.pages.len(), 10);
        assert!(c.total_requests() > 100);
    }

    #[test]
    fn resource_kinds_order_by_size() {
        let c = corpus();
        let mut by_kind: std::collections::HashMap<ResourceKind, Vec<f64>> = Default::default();
        for page in &c.pages {
            for r in page.cdn_resources() {
                by_kind.entry(r.kind).or_default().push(r.body_bytes as f64);
            }
        }
        let median = |v: &mut Vec<f64>| {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let css = median(by_kind.get_mut(&ResourceKind::Stylesheet).unwrap());
        let img = median(by_kind.get_mut(&ResourceKind::Image).unwrap());
        let media = median(by_kind.get_mut(&ResourceKind::Media).unwrap());
        assert!(css < img, "stylesheets smaller than images: {css} vs {img}");
        assert!(img < media, "images smaller than media: {img} vs {media}");
    }

    #[test]
    #[should_panic(expected = "invalid workload spec")]
    fn invalid_spec_panics() {
        let spec = WorkloadSpec {
            num_pages: 0,
            ..WorkloadSpec::default()
        };
        let _ = generate(&spec);
    }
}
