/root/repo/target/debug/deps/properties-47da4487f3778e93.d: crates/sim-core/tests/properties.rs

/root/repo/target/debug/deps/properties-47da4487f3778e93: crates/sim-core/tests/properties.rs

crates/sim-core/tests/properties.rs:
