/root/repo/target/debug/deps/export_har-1837fa733b5da4ba.d: crates/experiments/src/bin/export_har.rs

/root/repo/target/debug/deps/export_har-1837fa733b5da4ba: crates/experiments/src/bin/export_har.rs

crates/experiments/src/bin/export_har.rs:
