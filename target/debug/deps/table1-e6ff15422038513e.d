/root/repo/target/debug/deps/table1-e6ff15422038513e.d: crates/experiments/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e6ff15422038513e: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
