/root/repo/target/debug/deps/fig7-44485d3be7fc8f99.d: crates/experiments/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-44485d3be7fc8f99: crates/experiments/src/bin/fig7.rs

crates/experiments/src/bin/fig7.rs:
