/root/repo/target/debug/deps/vantages-2105fb1c938631af.d: crates/experiments/src/bin/vantages.rs Cargo.toml

/root/repo/target/debug/deps/libvantages-2105fb1c938631af.rmeta: crates/experiments/src/bin/vantages.rs Cargo.toml

crates/experiments/src/bin/vantages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
