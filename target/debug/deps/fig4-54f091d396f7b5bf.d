/root/repo/target/debug/deps/fig4-54f091d396f7b5bf.d: crates/experiments/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-54f091d396f7b5bf: crates/experiments/src/bin/fig4.rs

crates/experiments/src/bin/fig4.rs:
