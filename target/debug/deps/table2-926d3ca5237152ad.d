/root/repo/target/debug/deps/table2-926d3ca5237152ad.d: crates/experiments/src/bin/table2.rs

/root/repo/target/debug/deps/table2-926d3ca5237152ad: crates/experiments/src/bin/table2.rs

crates/experiments/src/bin/table2.rs:
