/root/repo/target/debug/deps/vantages-1f8277ee327cf913.d: crates/experiments/src/bin/vantages.rs

/root/repo/target/debug/deps/vantages-1f8277ee327cf913: crates/experiments/src/bin/vantages.rs

crates/experiments/src/bin/vantages.rs:
