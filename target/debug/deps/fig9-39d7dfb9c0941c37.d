/root/repo/target/debug/deps/fig9-39d7dfb9c0941c37.d: crates/experiments/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-39d7dfb9c0941c37: crates/experiments/src/bin/fig9.rs

crates/experiments/src/bin/fig9.rs:
