/root/repo/target/debug/deps/h3cdn_repro-b58a19f0487a7483.d: src/lib.rs

/root/repo/target/debug/deps/libh3cdn_repro-b58a19f0487a7483.rlib: src/lib.rs

/root/repo/target/debug/deps/libh3cdn_repro-b58a19f0487a7483.rmeta: src/lib.rs

src/lib.rs:
