/root/repo/target/debug/deps/properties-1907b9004392903e.d: crates/transport/tests/properties.rs

/root/repo/target/debug/deps/properties-1907b9004392903e: crates/transport/tests/properties.rs

crates/transport/tests/properties.rs:
