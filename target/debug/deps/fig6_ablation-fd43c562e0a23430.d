/root/repo/target/debug/deps/fig6_ablation-fd43c562e0a23430.d: crates/experiments/src/bin/fig6_ablation.rs

/root/repo/target/debug/deps/fig6_ablation-fd43c562e0a23430: crates/experiments/src/bin/fig6_ablation.rs

crates/experiments/src/bin/fig6_ablation.rs:
