/root/repo/target/debug/deps/h3cdn_browser-d8ad3d321224c8a6.d: crates/browser/src/lib.rs crates/browser/src/client.rs crates/browser/src/config.rs crates/browser/src/host.rs crates/browser/src/server.rs crates/browser/src/visit.rs

/root/repo/target/debug/deps/h3cdn_browser-d8ad3d321224c8a6: crates/browser/src/lib.rs crates/browser/src/client.rs crates/browser/src/config.rs crates/browser/src/host.rs crates/browser/src/server.rs crates/browser/src/visit.rs

crates/browser/src/lib.rs:
crates/browser/src/client.rs:
crates/browser/src/config.rs:
crates/browser/src/host.rs:
crates/browser/src/server.rs:
crates/browser/src/visit.rs:
