/root/repo/target/debug/deps/fig3-82056c4e40ce8f5d.d: crates/experiments/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-82056c4e40ce8f5d: crates/experiments/src/bin/fig3.rs

crates/experiments/src/bin/fig3.rs:
