/root/repo/target/debug/deps/fig2-3775c1723862ad9e.d: crates/experiments/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-3775c1723862ad9e: crates/experiments/src/bin/fig2.rs

crates/experiments/src/bin/fig2.rs:
