/root/repo/target/debug/deps/fig9-ef07581371d70bcc.d: crates/experiments/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-ef07581371d70bcc: crates/experiments/src/bin/fig9.rs

crates/experiments/src/bin/fig9.rs:
