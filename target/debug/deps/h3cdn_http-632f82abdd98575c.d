/root/repo/target/debug/deps/h3cdn_http-632f82abdd98575c.d: crates/http/src/lib.rs crates/http/src/client.rs crates/http/src/h1.rs crates/http/src/h2.rs crates/http/src/h3.rs crates/http/src/server.rs crates/http/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libh3cdn_http-632f82abdd98575c.rmeta: crates/http/src/lib.rs crates/http/src/client.rs crates/http/src/h1.rs crates/http/src/h2.rs crates/http/src/h3.rs crates/http/src/server.rs crates/http/src/types.rs Cargo.toml

crates/http/src/lib.rs:
crates/http/src/client.rs:
crates/http/src/h1.rs:
crates/http/src/h2.rs:
crates/http/src/h3.rs:
crates/http/src/server.rs:
crates/http/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
