/root/repo/target/debug/deps/h3cdn_web-7effd05797bd2471.d: crates/web/src/lib.rs crates/web/src/corpus.rs crates/web/src/domains.rs crates/web/src/resource.rs crates/web/src/spec.rs

/root/repo/target/debug/deps/libh3cdn_web-7effd05797bd2471.rlib: crates/web/src/lib.rs crates/web/src/corpus.rs crates/web/src/domains.rs crates/web/src/resource.rs crates/web/src/spec.rs

/root/repo/target/debug/deps/libh3cdn_web-7effd05797bd2471.rmeta: crates/web/src/lib.rs crates/web/src/corpus.rs crates/web/src/domains.rs crates/web/src/resource.rs crates/web/src/spec.rs

crates/web/src/lib.rs:
crates/web/src/corpus.rs:
crates/web/src/domains.rs:
crates/web/src/resource.rs:
crates/web/src/spec.rs:
