/root/repo/target/debug/deps/h3cdn_browser-115b1dbb73806bbf.d: crates/browser/src/lib.rs crates/browser/src/client.rs crates/browser/src/config.rs crates/browser/src/host.rs crates/browser/src/server.rs crates/browser/src/visit.rs Cargo.toml

/root/repo/target/debug/deps/libh3cdn_browser-115b1dbb73806bbf.rmeta: crates/browser/src/lib.rs crates/browser/src/client.rs crates/browser/src/config.rs crates/browser/src/host.rs crates/browser/src/server.rs crates/browser/src/visit.rs Cargo.toml

crates/browser/src/lib.rs:
crates/browser/src/client.rs:
crates/browser/src/config.rs:
crates/browser/src/host.rs:
crates/browser/src/server.rs:
crates/browser/src/visit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
