/root/repo/target/debug/deps/fig6_ablation-c53c6e21e75114e9.d: crates/experiments/src/bin/fig6_ablation.rs

/root/repo/target/debug/deps/fig6_ablation-c53c6e21e75114e9: crates/experiments/src/bin/fig6_ablation.rs

crates/experiments/src/bin/fig6_ablation.rs:
