/root/repo/target/debug/deps/report-b551a948c4f3dc30.d: crates/experiments/src/bin/report.rs Cargo.toml

/root/repo/target/debug/deps/libreport-b551a948c4f3dc30.rmeta: crates/experiments/src/bin/report.rs Cargo.toml

crates/experiments/src/bin/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
