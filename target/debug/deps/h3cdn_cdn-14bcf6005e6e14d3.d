/root/repo/target/debug/deps/h3cdn_cdn-14bcf6005e6e14d3.d: crates/cdn/src/lib.rs crates/cdn/src/edge.rs crates/cdn/src/locedge.rs crates/cdn/src/provider.rs crates/cdn/src/topology.rs

/root/repo/target/debug/deps/h3cdn_cdn-14bcf6005e6e14d3: crates/cdn/src/lib.rs crates/cdn/src/edge.rs crates/cdn/src/locedge.rs crates/cdn/src/provider.rs crates/cdn/src/topology.rs

crates/cdn/src/lib.rs:
crates/cdn/src/edge.rs:
crates/cdn/src/locedge.rs:
crates/cdn/src/provider.rs:
crates/cdn/src/topology.rs:
