/root/repo/target/debug/deps/fig9-c57126e470396c3c.d: crates/experiments/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-c57126e470396c3c.rmeta: crates/experiments/src/bin/fig9.rs Cargo.toml

crates/experiments/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
