/root/repo/target/debug/deps/h3cdn_http-c2f40112912b484c.d: crates/http/src/lib.rs crates/http/src/client.rs crates/http/src/h1.rs crates/http/src/h2.rs crates/http/src/h3.rs crates/http/src/server.rs crates/http/src/types.rs

/root/repo/target/debug/deps/h3cdn_http-c2f40112912b484c: crates/http/src/lib.rs crates/http/src/client.rs crates/http/src/h1.rs crates/http/src/h2.rs crates/http/src/h3.rs crates/http/src/server.rs crates/http/src/types.rs

crates/http/src/lib.rs:
crates/http/src/client.rs:
crates/http/src/h1.rs:
crates/http/src/h2.rs:
crates/http/src/h3.rs:
crates/http/src/server.rs:
crates/http/src/types.rs:
