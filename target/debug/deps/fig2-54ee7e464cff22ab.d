/root/repo/target/debug/deps/fig2-54ee7e464cff22ab.d: crates/experiments/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-54ee7e464cff22ab: crates/experiments/src/bin/fig2.rs

crates/experiments/src/bin/fig2.rs:
