/root/repo/target/debug/deps/export_har-1094d32657b07ddd.d: crates/experiments/src/bin/export_har.rs Cargo.toml

/root/repo/target/debug/deps/libexport_har-1094d32657b07ddd.rmeta: crates/experiments/src/bin/export_har.rs Cargo.toml

crates/experiments/src/bin/export_har.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
