/root/repo/target/debug/deps/fig7-5fb9c0076ad1bc03.d: crates/experiments/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-5fb9c0076ad1bc03.rmeta: crates/experiments/src/bin/fig7.rs Cargo.toml

crates/experiments/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
