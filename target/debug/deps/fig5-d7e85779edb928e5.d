/root/repo/target/debug/deps/fig5-d7e85779edb928e5.d: crates/experiments/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-d7e85779edb928e5: crates/experiments/src/bin/fig5.rs

crates/experiments/src/bin/fig5.rs:
