/root/repo/target/debug/deps/h3cdn_repro-8cbc1e2510a42c8d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libh3cdn_repro-8cbc1e2510a42c8d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
