/root/repo/target/debug/deps/fig9-2ee521682e2b9fdf.d: crates/experiments/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-2ee521682e2b9fdf.rmeta: crates/experiments/src/bin/fig9.rs Cargo.toml

crates/experiments/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
