/root/repo/target/debug/deps/repro_all-b583bf91d5cde79d.d: crates/experiments/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-b583bf91d5cde79d: crates/experiments/src/bin/repro_all.rs

crates/experiments/src/bin/repro_all.rs:
