/root/repo/target/debug/deps/sensitivity-fcf137b4be59d1d6.d: crates/experiments/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-fcf137b4be59d1d6: crates/experiments/src/bin/sensitivity.rs

crates/experiments/src/bin/sensitivity.rs:
