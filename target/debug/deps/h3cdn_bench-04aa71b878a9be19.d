/root/repo/target/debug/deps/h3cdn_bench-04aa71b878a9be19.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libh3cdn_bench-04aa71b878a9be19.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libh3cdn_bench-04aa71b878a9be19.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
