/root/repo/target/debug/deps/h3cdn-e9bd0d2720da1f6c.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig2.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/selector.rs crates/core/src/sensitivity.rs

/root/repo/target/debug/deps/libh3cdn-e9bd0d2720da1f6c.rlib: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig2.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/selector.rs crates/core/src/sensitivity.rs

/root/repo/target/debug/deps/libh3cdn-e9bd0d2720da1f6c.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig2.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/selector.rs crates/core/src/sensitivity.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/fig2.rs:
crates/core/src/experiments/fig3.rs:
crates/core/src/experiments/fig4.rs:
crates/core/src/experiments/fig5.rs:
crates/core/src/experiments/fig6.rs:
crates/core/src/experiments/fig7.rs:
crates/core/src/experiments/fig8.rs:
crates/core/src/experiments/fig9.rs:
crates/core/src/experiments/table1.rs:
crates/core/src/experiments/table2.rs:
crates/core/src/experiments/table3.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/selector.rs:
crates/core/src/sensitivity.rs:
