/root/repo/target/debug/deps/h3cdn_web-288bad47c24e11a7.d: crates/web/src/lib.rs crates/web/src/corpus.rs crates/web/src/domains.rs crates/web/src/resource.rs crates/web/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libh3cdn_web-288bad47c24e11a7.rmeta: crates/web/src/lib.rs crates/web/src/corpus.rs crates/web/src/domains.rs crates/web/src/resource.rs crates/web/src/spec.rs Cargo.toml

crates/web/src/lib.rs:
crates/web/src/corpus.rs:
crates/web/src/domains.rs:
crates/web/src/resource.rs:
crates/web/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
