/root/repo/target/debug/deps/h3cdn_repro-39e1efd80495cfda.d: src/lib.rs

/root/repo/target/debug/deps/libh3cdn_repro-39e1efd80495cfda.rlib: src/lib.rs

/root/repo/target/debug/deps/libh3cdn_repro-39e1efd80495cfda.rmeta: src/lib.rs

src/lib.rs:
