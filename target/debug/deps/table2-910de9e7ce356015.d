/root/repo/target/debug/deps/table2-910de9e7ce356015.d: crates/experiments/src/bin/table2.rs

/root/repo/target/debug/deps/table2-910de9e7ce356015: crates/experiments/src/bin/table2.rs

crates/experiments/src/bin/table2.rs:
