/root/repo/target/debug/deps/properties-ffc6016fea9765bb.d: crates/sim-core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ffc6016fea9765bb.rmeta: crates/sim-core/tests/properties.rs Cargo.toml

crates/sim-core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
