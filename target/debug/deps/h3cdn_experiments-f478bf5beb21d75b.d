/root/repo/target/debug/deps/h3cdn_experiments-f478bf5beb21d75b.d: crates/experiments/src/lib.rs

/root/repo/target/debug/deps/libh3cdn_experiments-f478bf5beb21d75b.rlib: crates/experiments/src/lib.rs

/root/repo/target/debug/deps/libh3cdn_experiments-f478bf5beb21d75b.rmeta: crates/experiments/src/lib.rs

crates/experiments/src/lib.rs:
