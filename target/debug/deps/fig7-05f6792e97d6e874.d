/root/repo/target/debug/deps/fig7-05f6792e97d6e874.d: crates/experiments/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-05f6792e97d6e874: crates/experiments/src/bin/fig7.rs

crates/experiments/src/bin/fig7.rs:
