/root/repo/target/debug/deps/h3cdn_transport-0fff300ab26f0c51.d: crates/transport/src/lib.rs crates/transport/src/cc/mod.rs crates/transport/src/cc/cubic.rs crates/transport/src/cc/new_reno.rs crates/transport/src/conn_id.rs crates/transport/src/duplex.rs crates/transport/src/quic/mod.rs crates/transport/src/quic/connection.rs crates/transport/src/quic/streams.rs crates/transport/src/rtt.rs crates/transport/src/tcp/mod.rs crates/transport/src/tcp/connection.rs crates/transport/src/tls.rs crates/transport/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libh3cdn_transport-0fff300ab26f0c51.rmeta: crates/transport/src/lib.rs crates/transport/src/cc/mod.rs crates/transport/src/cc/cubic.rs crates/transport/src/cc/new_reno.rs crates/transport/src/conn_id.rs crates/transport/src/duplex.rs crates/transport/src/quic/mod.rs crates/transport/src/quic/connection.rs crates/transport/src/quic/streams.rs crates/transport/src/rtt.rs crates/transport/src/tcp/mod.rs crates/transport/src/tcp/connection.rs crates/transport/src/tls.rs crates/transport/src/wire.rs Cargo.toml

crates/transport/src/lib.rs:
crates/transport/src/cc/mod.rs:
crates/transport/src/cc/cubic.rs:
crates/transport/src/cc/new_reno.rs:
crates/transport/src/conn_id.rs:
crates/transport/src/duplex.rs:
crates/transport/src/quic/mod.rs:
crates/transport/src/quic/connection.rs:
crates/transport/src/quic/streams.rs:
crates/transport/src/rtt.rs:
crates/transport/src/tcp/mod.rs:
crates/transport/src/tcp/connection.rs:
crates/transport/src/tls.rs:
crates/transport/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
