/root/repo/target/debug/deps/h3cdn_netsim-bfe4b9347c028c04.d: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/network.rs crates/netsim/src/node.rs crates/netsim/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libh3cdn_netsim-bfe4b9347c028c04.rmeta: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/network.rs crates/netsim/src/node.rs crates/netsim/src/topology.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/link.rs:
crates/netsim/src/loss.rs:
crates/netsim/src/network.rs:
crates/netsim/src/node.rs:
crates/netsim/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
