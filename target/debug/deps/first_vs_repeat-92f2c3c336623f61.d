/root/repo/target/debug/deps/first_vs_repeat-92f2c3c336623f61.d: crates/experiments/src/bin/first_vs_repeat.rs Cargo.toml

/root/repo/target/debug/deps/libfirst_vs_repeat-92f2c3c336623f61.rmeta: crates/experiments/src/bin/first_vs_repeat.rs Cargo.toml

crates/experiments/src/bin/first_vs_repeat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
