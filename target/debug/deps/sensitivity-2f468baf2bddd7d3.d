/root/repo/target/debug/deps/sensitivity-2f468baf2bddd7d3.d: crates/experiments/src/bin/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity-2f468baf2bddd7d3.rmeta: crates/experiments/src/bin/sensitivity.rs Cargo.toml

crates/experiments/src/bin/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
