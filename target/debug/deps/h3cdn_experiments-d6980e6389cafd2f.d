/root/repo/target/debug/deps/h3cdn_experiments-d6980e6389cafd2f.d: crates/experiments/src/lib.rs

/root/repo/target/debug/deps/h3cdn_experiments-d6980e6389cafd2f: crates/experiments/src/lib.rs

crates/experiments/src/lib.rs:
