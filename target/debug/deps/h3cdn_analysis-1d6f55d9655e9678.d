/root/repo/target/debug/deps/h3cdn_analysis-1d6f55d9655e9678.d: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/groups.rs crates/analysis/src/kmeans.rs crates/analysis/src/linfit.rs crates/analysis/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libh3cdn_analysis-1d6f55d9655e9678.rmeta: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/groups.rs crates/analysis/src/kmeans.rs crates/analysis/src/linfit.rs crates/analysis/src/stats.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/bootstrap.rs:
crates/analysis/src/groups.rs:
crates/analysis/src/kmeans.rs:
crates/analysis/src/linfit.rs:
crates/analysis/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
