/root/repo/target/debug/deps/h3cdn_cdn-7fdb63dcd09d8f3b.d: crates/cdn/src/lib.rs crates/cdn/src/edge.rs crates/cdn/src/locedge.rs crates/cdn/src/provider.rs crates/cdn/src/topology.rs

/root/repo/target/debug/deps/libh3cdn_cdn-7fdb63dcd09d8f3b.rlib: crates/cdn/src/lib.rs crates/cdn/src/edge.rs crates/cdn/src/locedge.rs crates/cdn/src/provider.rs crates/cdn/src/topology.rs

/root/repo/target/debug/deps/libh3cdn_cdn-7fdb63dcd09d8f3b.rmeta: crates/cdn/src/lib.rs crates/cdn/src/edge.rs crates/cdn/src/locedge.rs crates/cdn/src/provider.rs crates/cdn/src/topology.rs

crates/cdn/src/lib.rs:
crates/cdn/src/edge.rs:
crates/cdn/src/locedge.rs:
crates/cdn/src/provider.rs:
crates/cdn/src/topology.rs:
