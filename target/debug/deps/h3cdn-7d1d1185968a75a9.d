/root/repo/target/debug/deps/h3cdn-7d1d1185968a75a9.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig2.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/selector.rs crates/core/src/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libh3cdn-7d1d1185968a75a9.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig2.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/selector.rs crates/core/src/sensitivity.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/fig2.rs:
crates/core/src/experiments/fig3.rs:
crates/core/src/experiments/fig4.rs:
crates/core/src/experiments/fig5.rs:
crates/core/src/experiments/fig6.rs:
crates/core/src/experiments/fig7.rs:
crates/core/src/experiments/fig8.rs:
crates/core/src/experiments/fig9.rs:
crates/core/src/experiments/table1.rs:
crates/core/src/experiments/table2.rs:
crates/core/src/experiments/table3.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/selector.rs:
crates/core/src/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
