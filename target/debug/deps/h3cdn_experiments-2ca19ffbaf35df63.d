/root/repo/target/debug/deps/h3cdn_experiments-2ca19ffbaf35df63.d: crates/experiments/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libh3cdn_experiments-2ca19ffbaf35df63.rmeta: crates/experiments/src/lib.rs Cargo.toml

crates/experiments/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
