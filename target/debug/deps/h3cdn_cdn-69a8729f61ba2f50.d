/root/repo/target/debug/deps/h3cdn_cdn-69a8729f61ba2f50.d: crates/cdn/src/lib.rs crates/cdn/src/edge.rs crates/cdn/src/locedge.rs crates/cdn/src/provider.rs crates/cdn/src/topology.rs

/root/repo/target/debug/deps/libh3cdn_cdn-69a8729f61ba2f50.rlib: crates/cdn/src/lib.rs crates/cdn/src/edge.rs crates/cdn/src/locedge.rs crates/cdn/src/provider.rs crates/cdn/src/topology.rs

/root/repo/target/debug/deps/libh3cdn_cdn-69a8729f61ba2f50.rmeta: crates/cdn/src/lib.rs crates/cdn/src/edge.rs crates/cdn/src/locedge.rs crates/cdn/src/provider.rs crates/cdn/src/topology.rs

crates/cdn/src/lib.rs:
crates/cdn/src/edge.rs:
crates/cdn/src/locedge.rs:
crates/cdn/src/provider.rs:
crates/cdn/src/topology.rs:
