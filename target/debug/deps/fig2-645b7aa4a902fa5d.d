/root/repo/target/debug/deps/fig2-645b7aa4a902fa5d.d: crates/experiments/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-645b7aa4a902fa5d: crates/experiments/src/bin/fig2.rs

crates/experiments/src/bin/fig2.rs:
