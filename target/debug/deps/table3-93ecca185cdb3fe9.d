/root/repo/target/debug/deps/table3-93ecca185cdb3fe9.d: crates/experiments/src/bin/table3.rs

/root/repo/target/debug/deps/table3-93ecca185cdb3fe9: crates/experiments/src/bin/table3.rs

crates/experiments/src/bin/table3.rs:
