/root/repo/target/debug/deps/h3cdn_analysis-567734d6e782bf46.d: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/groups.rs crates/analysis/src/kmeans.rs crates/analysis/src/linfit.rs crates/analysis/src/stats.rs

/root/repo/target/debug/deps/libh3cdn_analysis-567734d6e782bf46.rlib: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/groups.rs crates/analysis/src/kmeans.rs crates/analysis/src/linfit.rs crates/analysis/src/stats.rs

/root/repo/target/debug/deps/libh3cdn_analysis-567734d6e782bf46.rmeta: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/groups.rs crates/analysis/src/kmeans.rs crates/analysis/src/linfit.rs crates/analysis/src/stats.rs

crates/analysis/src/lib.rs:
crates/analysis/src/bootstrap.rs:
crates/analysis/src/groups.rs:
crates/analysis/src/kmeans.rs:
crates/analysis/src/linfit.rs:
crates/analysis/src/stats.rs:
