/root/repo/target/debug/deps/runner_scaling-1644743246a76cff.d: crates/bench/benches/runner_scaling.rs Cargo.toml

/root/repo/target/debug/deps/librunner_scaling-1644743246a76cff.rmeta: crates/bench/benches/runner_scaling.rs Cargo.toml

crates/bench/benches/runner_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
