/root/repo/target/debug/deps/h3cdn_sim_core-1b5661a94ff68755.d: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/rng.rs crates/sim-core/src/time.rs crates/sim-core/src/units.rs

/root/repo/target/debug/deps/libh3cdn_sim_core-1b5661a94ff68755.rlib: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/rng.rs crates/sim-core/src/time.rs crates/sim-core/src/units.rs

/root/repo/target/debug/deps/libh3cdn_sim_core-1b5661a94ff68755.rmeta: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/rng.rs crates/sim-core/src/time.rs crates/sim-core/src/units.rs

crates/sim-core/src/lib.rs:
crates/sim-core/src/event.rs:
crates/sim-core/src/rng.rs:
crates/sim-core/src/time.rs:
crates/sim-core/src/units.rs:
