/root/repo/target/debug/deps/fig2-e681f24754c5bf75.d: crates/experiments/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-e681f24754c5bf75.rmeta: crates/experiments/src/bin/fig2.rs Cargo.toml

crates/experiments/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
