/root/repo/target/debug/deps/h3cdn_sim_core-cfa361f864c038a6.d: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/rng.rs crates/sim-core/src/time.rs crates/sim-core/src/units.rs

/root/repo/target/debug/deps/h3cdn_sim_core-cfa361f864c038a6: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/rng.rs crates/sim-core/src/time.rs crates/sim-core/src/units.rs

crates/sim-core/src/lib.rs:
crates/sim-core/src/event.rs:
crates/sim-core/src/rng.rs:
crates/sim-core/src/time.rs:
crates/sim-core/src/units.rs:
