/root/repo/target/debug/deps/export_har-19e6db45ac477a83.d: crates/experiments/src/bin/export_har.rs Cargo.toml

/root/repo/target/debug/deps/libexport_har-19e6db45ac477a83.rmeta: crates/experiments/src/bin/export_har.rs Cargo.toml

crates/experiments/src/bin/export_har.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
