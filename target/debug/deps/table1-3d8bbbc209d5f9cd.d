/root/repo/target/debug/deps/table1-3d8bbbc209d5f9cd.d: crates/experiments/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3d8bbbc209d5f9cd: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
