/root/repo/target/debug/deps/runner_determinism-c3ffaa9511ab3273.d: tests/runner_determinism.rs Cargo.toml

/root/repo/target/debug/deps/librunner_determinism-c3ffaa9511ab3273.rmeta: tests/runner_determinism.rs Cargo.toml

tests/runner_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
