/root/repo/target/debug/deps/h3cdn_transport-8862a27f00427154.d: crates/transport/src/lib.rs crates/transport/src/cc/mod.rs crates/transport/src/cc/cubic.rs crates/transport/src/cc/new_reno.rs crates/transport/src/conn_id.rs crates/transport/src/duplex.rs crates/transport/src/quic/mod.rs crates/transport/src/quic/connection.rs crates/transport/src/quic/streams.rs crates/transport/src/rtt.rs crates/transport/src/tcp/mod.rs crates/transport/src/tcp/connection.rs crates/transport/src/tls.rs crates/transport/src/wire.rs

/root/repo/target/debug/deps/h3cdn_transport-8862a27f00427154: crates/transport/src/lib.rs crates/transport/src/cc/mod.rs crates/transport/src/cc/cubic.rs crates/transport/src/cc/new_reno.rs crates/transport/src/conn_id.rs crates/transport/src/duplex.rs crates/transport/src/quic/mod.rs crates/transport/src/quic/connection.rs crates/transport/src/quic/streams.rs crates/transport/src/rtt.rs crates/transport/src/tcp/mod.rs crates/transport/src/tcp/connection.rs crates/transport/src/tls.rs crates/transport/src/wire.rs

crates/transport/src/lib.rs:
crates/transport/src/cc/mod.rs:
crates/transport/src/cc/cubic.rs:
crates/transport/src/cc/new_reno.rs:
crates/transport/src/conn_id.rs:
crates/transport/src/duplex.rs:
crates/transport/src/quic/mod.rs:
crates/transport/src/quic/connection.rs:
crates/transport/src/quic/streams.rs:
crates/transport/src/rtt.rs:
crates/transport/src/tcp/mod.rs:
crates/transport/src/tcp/connection.rs:
crates/transport/src/tls.rs:
crates/transport/src/wire.rs:
