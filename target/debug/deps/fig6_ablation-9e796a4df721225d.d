/root/repo/target/debug/deps/fig6_ablation-9e796a4df721225d.d: crates/experiments/src/bin/fig6_ablation.rs

/root/repo/target/debug/deps/fig6_ablation-9e796a4df721225d: crates/experiments/src/bin/fig6_ablation.rs

crates/experiments/src/bin/fig6_ablation.rs:
