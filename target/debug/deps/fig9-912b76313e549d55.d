/root/repo/target/debug/deps/fig9-912b76313e549d55.d: crates/experiments/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-912b76313e549d55: crates/experiments/src/bin/fig9.rs

crates/experiments/src/bin/fig9.rs:
