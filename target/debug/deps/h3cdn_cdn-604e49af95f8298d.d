/root/repo/target/debug/deps/h3cdn_cdn-604e49af95f8298d.d: crates/cdn/src/lib.rs crates/cdn/src/edge.rs crates/cdn/src/locedge.rs crates/cdn/src/provider.rs crates/cdn/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libh3cdn_cdn-604e49af95f8298d.rmeta: crates/cdn/src/lib.rs crates/cdn/src/edge.rs crates/cdn/src/locedge.rs crates/cdn/src/provider.rs crates/cdn/src/topology.rs Cargo.toml

crates/cdn/src/lib.rs:
crates/cdn/src/edge.rs:
crates/cdn/src/locedge.rs:
crates/cdn/src/provider.rs:
crates/cdn/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
