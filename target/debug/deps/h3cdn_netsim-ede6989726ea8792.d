/root/repo/target/debug/deps/h3cdn_netsim-ede6989726ea8792.d: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/network.rs crates/netsim/src/node.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/h3cdn_netsim-ede6989726ea8792: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/network.rs crates/netsim/src/node.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/link.rs:
crates/netsim/src/loss.rs:
crates/netsim/src/network.rs:
crates/netsim/src/node.rs:
crates/netsim/src/topology.rs:
