/root/repo/target/debug/deps/sensitivity-27c2ef84203e456a.d: crates/experiments/src/bin/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity-27c2ef84203e456a.rmeta: crates/experiments/src/bin/sensitivity.rs Cargo.toml

crates/experiments/src/bin/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
