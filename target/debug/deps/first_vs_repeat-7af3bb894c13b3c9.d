/root/repo/target/debug/deps/first_vs_repeat-7af3bb894c13b3c9.d: crates/experiments/src/bin/first_vs_repeat.rs

/root/repo/target/debug/deps/first_vs_repeat-7af3bb894c13b3c9: crates/experiments/src/bin/first_vs_repeat.rs

crates/experiments/src/bin/first_vs_repeat.rs:
