/root/repo/target/debug/deps/h3cdn_repro-b2ccb4425a45d797.d: src/lib.rs

/root/repo/target/debug/deps/h3cdn_repro-b2ccb4425a45d797: src/lib.rs

src/lib.rs:
