/root/repo/target/debug/deps/fig3-e7361eed2c67a349.d: crates/experiments/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-e7361eed2c67a349: crates/experiments/src/bin/fig3.rs

crates/experiments/src/bin/fig3.rs:
