/root/repo/target/debug/deps/table3-50c9b5e52624b55e.d: crates/experiments/src/bin/table3.rs

/root/repo/target/debug/deps/table3-50c9b5e52624b55e: crates/experiments/src/bin/table3.rs

crates/experiments/src/bin/table3.rs:
