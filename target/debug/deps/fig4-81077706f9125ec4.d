/root/repo/target/debug/deps/fig4-81077706f9125ec4.d: crates/experiments/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-81077706f9125ec4.rmeta: crates/experiments/src/bin/fig4.rs Cargo.toml

crates/experiments/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
