/root/repo/target/debug/deps/properties-3758531f34ab59b9.d: crates/analysis/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-3758531f34ab59b9.rmeta: crates/analysis/tests/properties.rs Cargo.toml

crates/analysis/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
