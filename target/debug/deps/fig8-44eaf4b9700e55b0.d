/root/repo/target/debug/deps/fig8-44eaf4b9700e55b0.d: crates/experiments/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-44eaf4b9700e55b0: crates/experiments/src/bin/fig8.rs

crates/experiments/src/bin/fig8.rs:
