/root/repo/target/debug/deps/repro_all-59fd66aecc625111.d: crates/experiments/src/bin/repro_all.rs Cargo.toml

/root/repo/target/debug/deps/librepro_all-59fd66aecc625111.rmeta: crates/experiments/src/bin/repro_all.rs Cargo.toml

crates/experiments/src/bin/repro_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
