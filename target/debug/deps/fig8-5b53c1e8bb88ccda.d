/root/repo/target/debug/deps/fig8-5b53c1e8bb88ccda.d: crates/experiments/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-5b53c1e8bb88ccda: crates/experiments/src/bin/fig8.rs

crates/experiments/src/bin/fig8.rs:
