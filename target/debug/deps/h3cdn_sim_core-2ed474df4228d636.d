/root/repo/target/debug/deps/h3cdn_sim_core-2ed474df4228d636.d: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/rng.rs crates/sim-core/src/time.rs crates/sim-core/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libh3cdn_sim_core-2ed474df4228d636.rmeta: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/rng.rs crates/sim-core/src/time.rs crates/sim-core/src/units.rs Cargo.toml

crates/sim-core/src/lib.rs:
crates/sim-core/src/event.rs:
crates/sim-core/src/rng.rs:
crates/sim-core/src/time.rs:
crates/sim-core/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
