/root/repo/target/debug/deps/export_har-578ec963f6b58098.d: crates/experiments/src/bin/export_har.rs

/root/repo/target/debug/deps/export_har-578ec963f6b58098: crates/experiments/src/bin/export_har.rs

crates/experiments/src/bin/export_har.rs:
