/root/repo/target/debug/deps/h3cdn_analysis-852e83048a1c6d55.d: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/groups.rs crates/analysis/src/kmeans.rs crates/analysis/src/linfit.rs crates/analysis/src/stats.rs

/root/repo/target/debug/deps/h3cdn_analysis-852e83048a1c6d55: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/groups.rs crates/analysis/src/kmeans.rs crates/analysis/src/linfit.rs crates/analysis/src/stats.rs

crates/analysis/src/lib.rs:
crates/analysis/src/bootstrap.rs:
crates/analysis/src/groups.rs:
crates/analysis/src/kmeans.rs:
crates/analysis/src/linfit.rs:
crates/analysis/src/stats.rs:
