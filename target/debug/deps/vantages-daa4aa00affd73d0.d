/root/repo/target/debug/deps/vantages-daa4aa00affd73d0.d: crates/experiments/src/bin/vantages.rs

/root/repo/target/debug/deps/vantages-daa4aa00affd73d0: crates/experiments/src/bin/vantages.rs

crates/experiments/src/bin/vantages.rs:
