/root/repo/target/debug/deps/report-0f6773a5a3155428.d: crates/experiments/src/bin/report.rs

/root/repo/target/debug/deps/report-0f6773a5a3155428: crates/experiments/src/bin/report.rs

crates/experiments/src/bin/report.rs:
