/root/repo/target/debug/deps/report-68eff95baf9be874.d: crates/experiments/src/bin/report.rs

/root/repo/target/debug/deps/report-68eff95baf9be874: crates/experiments/src/bin/report.rs

crates/experiments/src/bin/report.rs:
