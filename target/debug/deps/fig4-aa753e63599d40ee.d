/root/repo/target/debug/deps/fig4-aa753e63599d40ee.d: crates/experiments/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-aa753e63599d40ee: crates/experiments/src/bin/fig4.rs

crates/experiments/src/bin/fig4.rs:
