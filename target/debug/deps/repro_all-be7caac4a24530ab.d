/root/repo/target/debug/deps/repro_all-be7caac4a24530ab.d: crates/experiments/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-be7caac4a24530ab: crates/experiments/src/bin/repro_all.rs

crates/experiments/src/bin/repro_all.rs:
