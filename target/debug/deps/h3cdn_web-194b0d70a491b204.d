/root/repo/target/debug/deps/h3cdn_web-194b0d70a491b204.d: crates/web/src/lib.rs crates/web/src/corpus.rs crates/web/src/domains.rs crates/web/src/resource.rs crates/web/src/spec.rs

/root/repo/target/debug/deps/h3cdn_web-194b0d70a491b204: crates/web/src/lib.rs crates/web/src/corpus.rs crates/web/src/domains.rs crates/web/src/resource.rs crates/web/src/spec.rs

crates/web/src/lib.rs:
crates/web/src/corpus.rs:
crates/web/src/domains.rs:
crates/web/src/resource.rs:
crates/web/src/spec.rs:
