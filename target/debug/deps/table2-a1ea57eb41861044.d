/root/repo/target/debug/deps/table2-a1ea57eb41861044.d: crates/experiments/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-a1ea57eb41861044.rmeta: crates/experiments/src/bin/table2.rs Cargo.toml

crates/experiments/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
