/root/repo/target/debug/deps/export_har-036c689a97167b63.d: crates/experiments/src/bin/export_har.rs

/root/repo/target/debug/deps/export_har-036c689a97167b63: crates/experiments/src/bin/export_har.rs

crates/experiments/src/bin/export_har.rs:
