/root/repo/target/debug/deps/h3cdn_bench-055858a7ceefd9d7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libh3cdn_bench-055858a7ceefd9d7.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libh3cdn_bench-055858a7ceefd9d7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
