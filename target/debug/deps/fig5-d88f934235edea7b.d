/root/repo/target/debug/deps/fig5-d88f934235edea7b.d: crates/experiments/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-d88f934235edea7b.rmeta: crates/experiments/src/bin/fig5.rs Cargo.toml

crates/experiments/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
