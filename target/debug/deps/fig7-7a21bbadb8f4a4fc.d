/root/repo/target/debug/deps/fig7-7a21bbadb8f4a4fc.d: crates/experiments/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-7a21bbadb8f4a4fc: crates/experiments/src/bin/fig7.rs

crates/experiments/src/bin/fig7.rs:
