/root/repo/target/debug/deps/report-b6f0e04db89fccac.d: crates/experiments/src/bin/report.rs

/root/repo/target/debug/deps/report-b6f0e04db89fccac: crates/experiments/src/bin/report.rs

crates/experiments/src/bin/report.rs:
