/root/repo/target/debug/deps/runner_determinism-ac493e71c9021bc0.d: tests/runner_determinism.rs

/root/repo/target/debug/deps/runner_determinism-ac493e71c9021bc0: tests/runner_determinism.rs

tests/runner_determinism.rs:
