/root/repo/target/debug/deps/end_to_end-a70f1d60fc8156d3.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a70f1d60fc8156d3: tests/end_to_end.rs

tests/end_to_end.rs:
