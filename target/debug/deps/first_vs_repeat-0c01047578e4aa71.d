/root/repo/target/debug/deps/first_vs_repeat-0c01047578e4aa71.d: crates/experiments/src/bin/first_vs_repeat.rs

/root/repo/target/debug/deps/first_vs_repeat-0c01047578e4aa71: crates/experiments/src/bin/first_vs_repeat.rs

crates/experiments/src/bin/first_vs_repeat.rs:
