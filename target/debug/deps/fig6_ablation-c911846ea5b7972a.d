/root/repo/target/debug/deps/fig6_ablation-c911846ea5b7972a.d: crates/experiments/src/bin/fig6_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_ablation-c911846ea5b7972a.rmeta: crates/experiments/src/bin/fig6_ablation.rs Cargo.toml

crates/experiments/src/bin/fig6_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
