/root/repo/target/debug/deps/table3-53d2bee9ca2b897b.d: crates/experiments/src/bin/table3.rs

/root/repo/target/debug/deps/table3-53d2bee9ca2b897b: crates/experiments/src/bin/table3.rs

crates/experiments/src/bin/table3.rs:
