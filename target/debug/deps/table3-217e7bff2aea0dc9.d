/root/repo/target/debug/deps/table3-217e7bff2aea0dc9.d: crates/experiments/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-217e7bff2aea0dc9.rmeta: crates/experiments/src/bin/table3.rs Cargo.toml

crates/experiments/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
