/root/repo/target/debug/deps/h3cdn_http-ceac2a8edcdccf22.d: crates/http/src/lib.rs crates/http/src/client.rs crates/http/src/h1.rs crates/http/src/h2.rs crates/http/src/h3.rs crates/http/src/server.rs crates/http/src/types.rs

/root/repo/target/debug/deps/libh3cdn_http-ceac2a8edcdccf22.rlib: crates/http/src/lib.rs crates/http/src/client.rs crates/http/src/h1.rs crates/http/src/h2.rs crates/http/src/h3.rs crates/http/src/server.rs crates/http/src/types.rs

/root/repo/target/debug/deps/libh3cdn_http-ceac2a8edcdccf22.rmeta: crates/http/src/lib.rs crates/http/src/client.rs crates/http/src/h1.rs crates/http/src/h2.rs crates/http/src/h3.rs crates/http/src/server.rs crates/http/src/types.rs

crates/http/src/lib.rs:
crates/http/src/client.rs:
crates/http/src/h1.rs:
crates/http/src/h2.rs:
crates/http/src/h3.rs:
crates/http/src/server.rs:
crates/http/src/types.rs:
