/root/repo/target/debug/deps/sensitivity-9f8580743baeb30a.d: crates/experiments/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-9f8580743baeb30a: crates/experiments/src/bin/sensitivity.rs

crates/experiments/src/bin/sensitivity.rs:
