/root/repo/target/debug/deps/fig5-674845c5b3280ce2.d: crates/experiments/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-674845c5b3280ce2: crates/experiments/src/bin/fig5.rs

crates/experiments/src/bin/fig5.rs:
