/root/repo/target/debug/deps/fig6-fb60d5c2fba41d0f.d: crates/experiments/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-fb60d5c2fba41d0f: crates/experiments/src/bin/fig6.rs

crates/experiments/src/bin/fig6.rs:
