/root/repo/target/debug/deps/fig3-7d7dfa2e771ae995.d: crates/experiments/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-7d7dfa2e771ae995: crates/experiments/src/bin/fig3.rs

crates/experiments/src/bin/fig3.rs:
