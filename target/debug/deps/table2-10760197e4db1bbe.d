/root/repo/target/debug/deps/table2-10760197e4db1bbe.d: crates/experiments/src/bin/table2.rs

/root/repo/target/debug/deps/table2-10760197e4db1bbe: crates/experiments/src/bin/table2.rs

crates/experiments/src/bin/table2.rs:
