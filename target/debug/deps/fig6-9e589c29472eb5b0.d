/root/repo/target/debug/deps/fig6-9e589c29472eb5b0.d: crates/experiments/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-9e589c29472eb5b0: crates/experiments/src/bin/fig6.rs

crates/experiments/src/bin/fig6.rs:
