/root/repo/target/debug/deps/fig4-1a6af5be65de0e21.d: crates/experiments/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-1a6af5be65de0e21: crates/experiments/src/bin/fig4.rs

crates/experiments/src/bin/fig4.rs:
