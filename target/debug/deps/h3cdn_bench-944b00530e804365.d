/root/repo/target/debug/deps/h3cdn_bench-944b00530e804365.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/h3cdn_bench-944b00530e804365: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
