/root/repo/target/debug/deps/fig4-f680580e00d03fb5.d: crates/experiments/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-f680580e00d03fb5.rmeta: crates/experiments/src/bin/fig4.rs Cargo.toml

crates/experiments/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
