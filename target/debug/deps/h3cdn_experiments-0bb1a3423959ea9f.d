/root/repo/target/debug/deps/h3cdn_experiments-0bb1a3423959ea9f.d: crates/experiments/src/lib.rs

/root/repo/target/debug/deps/libh3cdn_experiments-0bb1a3423959ea9f.rlib: crates/experiments/src/lib.rs

/root/repo/target/debug/deps/libh3cdn_experiments-0bb1a3423959ea9f.rmeta: crates/experiments/src/lib.rs

crates/experiments/src/lib.rs:
