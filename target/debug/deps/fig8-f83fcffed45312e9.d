/root/repo/target/debug/deps/fig8-f83fcffed45312e9.d: crates/experiments/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-f83fcffed45312e9: crates/experiments/src/bin/fig8.rs

crates/experiments/src/bin/fig8.rs:
