/root/repo/target/debug/deps/h3cdn_har-32c47d37f4b6d32f.d: crates/har/src/lib.rs crates/har/src/entry.rs crates/har/src/export.rs crates/har/src/reduction.rs

/root/repo/target/debug/deps/h3cdn_har-32c47d37f4b6d32f: crates/har/src/lib.rs crates/har/src/entry.rs crates/har/src/export.rs crates/har/src/reduction.rs

crates/har/src/lib.rs:
crates/har/src/entry.rs:
crates/har/src/export.rs:
crates/har/src/reduction.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
