/root/repo/target/debug/deps/fig6-de0304c89853be73.d: crates/experiments/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-de0304c89853be73: crates/experiments/src/bin/fig6.rs

crates/experiments/src/bin/fig6.rs:
