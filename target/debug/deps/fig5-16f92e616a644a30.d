/root/repo/target/debug/deps/fig5-16f92e616a644a30.d: crates/experiments/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-16f92e616a644a30.rmeta: crates/experiments/src/bin/fig5.rs Cargo.toml

crates/experiments/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
