/root/repo/target/debug/deps/property_based-41c93cde2992da45.d: tests/property_based.rs

/root/repo/target/debug/deps/property_based-41c93cde2992da45: tests/property_based.rs

tests/property_based.rs:
