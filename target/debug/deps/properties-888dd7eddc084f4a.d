/root/repo/target/debug/deps/properties-888dd7eddc084f4a.d: crates/transport/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-888dd7eddc084f4a.rmeta: crates/transport/tests/properties.rs Cargo.toml

crates/transport/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
