/root/repo/target/debug/deps/h3cdn_web-aeb970afb70912b8.d: crates/web/src/lib.rs crates/web/src/corpus.rs crates/web/src/domains.rs crates/web/src/resource.rs crates/web/src/spec.rs

/root/repo/target/debug/deps/libh3cdn_web-aeb970afb70912b8.rlib: crates/web/src/lib.rs crates/web/src/corpus.rs crates/web/src/domains.rs crates/web/src/resource.rs crates/web/src/spec.rs

/root/repo/target/debug/deps/libh3cdn_web-aeb970afb70912b8.rmeta: crates/web/src/lib.rs crates/web/src/corpus.rs crates/web/src/domains.rs crates/web/src/resource.rs crates/web/src/spec.rs

crates/web/src/lib.rs:
crates/web/src/corpus.rs:
crates/web/src/domains.rs:
crates/web/src/resource.rs:
crates/web/src/spec.rs:
