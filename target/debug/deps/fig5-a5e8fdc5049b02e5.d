/root/repo/target/debug/deps/fig5-a5e8fdc5049b02e5.d: crates/experiments/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-a5e8fdc5049b02e5: crates/experiments/src/bin/fig5.rs

crates/experiments/src/bin/fig5.rs:
