/root/repo/target/debug/deps/first_vs_repeat-288237346f82c76b.d: crates/experiments/src/bin/first_vs_repeat.rs

/root/repo/target/debug/deps/first_vs_repeat-288237346f82c76b: crates/experiments/src/bin/first_vs_repeat.rs

crates/experiments/src/bin/first_vs_repeat.rs:
