/root/repo/target/debug/deps/table3-720cd5481aaa9cf9.d: crates/experiments/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-720cd5481aaa9cf9.rmeta: crates/experiments/src/bin/table3.rs Cargo.toml

crates/experiments/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
