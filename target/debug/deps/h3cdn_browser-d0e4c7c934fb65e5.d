/root/repo/target/debug/deps/h3cdn_browser-d0e4c7c934fb65e5.d: crates/browser/src/lib.rs crates/browser/src/client.rs crates/browser/src/config.rs crates/browser/src/host.rs crates/browser/src/server.rs crates/browser/src/visit.rs

/root/repo/target/debug/deps/libh3cdn_browser-d0e4c7c934fb65e5.rlib: crates/browser/src/lib.rs crates/browser/src/client.rs crates/browser/src/config.rs crates/browser/src/host.rs crates/browser/src/server.rs crates/browser/src/visit.rs

/root/repo/target/debug/deps/libh3cdn_browser-d0e4c7c934fb65e5.rmeta: crates/browser/src/lib.rs crates/browser/src/client.rs crates/browser/src/config.rs crates/browser/src/host.rs crates/browser/src/server.rs crates/browser/src/visit.rs

crates/browser/src/lib.rs:
crates/browser/src/client.rs:
crates/browser/src/config.rs:
crates/browser/src/host.rs:
crates/browser/src/server.rs:
crates/browser/src/visit.rs:
