/root/repo/target/debug/deps/properties-503a7f617a1f10ea.d: crates/analysis/tests/properties.rs

/root/repo/target/debug/deps/properties-503a7f617a1f10ea: crates/analysis/tests/properties.rs

crates/analysis/tests/properties.rs:
