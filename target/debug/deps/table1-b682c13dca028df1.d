/root/repo/target/debug/deps/table1-b682c13dca028df1.d: crates/experiments/src/bin/table1.rs

/root/repo/target/debug/deps/table1-b682c13dca028df1: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
