/root/repo/target/debug/deps/fig7-449dd5e14900f96e.d: crates/experiments/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-449dd5e14900f96e.rmeta: crates/experiments/src/bin/fig7.rs Cargo.toml

crates/experiments/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
