/root/repo/target/debug/deps/vantages-b014365778f2cbef.d: crates/experiments/src/bin/vantages.rs

/root/repo/target/debug/deps/vantages-b014365778f2cbef: crates/experiments/src/bin/vantages.rs

crates/experiments/src/bin/vantages.rs:
