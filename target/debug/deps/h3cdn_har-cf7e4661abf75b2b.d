/root/repo/target/debug/deps/h3cdn_har-cf7e4661abf75b2b.d: crates/har/src/lib.rs crates/har/src/entry.rs crates/har/src/export.rs crates/har/src/reduction.rs

/root/repo/target/debug/deps/libh3cdn_har-cf7e4661abf75b2b.rlib: crates/har/src/lib.rs crates/har/src/entry.rs crates/har/src/export.rs crates/har/src/reduction.rs

/root/repo/target/debug/deps/libh3cdn_har-cf7e4661abf75b2b.rmeta: crates/har/src/lib.rs crates/har/src/entry.rs crates/har/src/export.rs crates/har/src/reduction.rs

crates/har/src/lib.rs:
crates/har/src/entry.rs:
crates/har/src/export.rs:
crates/har/src/reduction.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
