/root/repo/target/debug/deps/sensitivity-d32a0cb39c8c77bc.d: crates/experiments/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-d32a0cb39c8c77bc: crates/experiments/src/bin/sensitivity.rs

crates/experiments/src/bin/sensitivity.rs:
