/root/repo/target/debug/deps/h3cdn_bench-11530224ecc294ec.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libh3cdn_bench-11530224ecc294ec.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
