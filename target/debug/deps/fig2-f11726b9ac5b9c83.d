/root/repo/target/debug/deps/fig2-f11726b9ac5b9c83.d: crates/experiments/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-f11726b9ac5b9c83.rmeta: crates/experiments/src/bin/fig2.rs Cargo.toml

crates/experiments/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
