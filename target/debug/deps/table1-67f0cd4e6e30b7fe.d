/root/repo/target/debug/deps/table1-67f0cd4e6e30b7fe.d: crates/experiments/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-67f0cd4e6e30b7fe.rmeta: crates/experiments/src/bin/table1.rs Cargo.toml

crates/experiments/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
