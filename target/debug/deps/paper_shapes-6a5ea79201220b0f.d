/root/repo/target/debug/deps/paper_shapes-6a5ea79201220b0f.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-6a5ea79201220b0f: tests/paper_shapes.rs

tests/paper_shapes.rs:
