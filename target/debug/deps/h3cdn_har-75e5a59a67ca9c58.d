/root/repo/target/debug/deps/h3cdn_har-75e5a59a67ca9c58.d: crates/har/src/lib.rs crates/har/src/entry.rs crates/har/src/export.rs crates/har/src/reduction.rs Cargo.toml

/root/repo/target/debug/deps/libh3cdn_har-75e5a59a67ca9c58.rmeta: crates/har/src/lib.rs crates/har/src/entry.rs crates/har/src/export.rs crates/har/src/reduction.rs Cargo.toml

crates/har/src/lib.rs:
crates/har/src/entry.rs:
crates/har/src/export.rs:
crates/har/src/reduction.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
