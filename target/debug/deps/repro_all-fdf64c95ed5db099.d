/root/repo/target/debug/deps/repro_all-fdf64c95ed5db099.d: crates/experiments/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-fdf64c95ed5db099: crates/experiments/src/bin/repro_all.rs

crates/experiments/src/bin/repro_all.rs:
