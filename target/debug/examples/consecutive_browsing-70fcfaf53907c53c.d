/root/repo/target/debug/examples/consecutive_browsing-70fcfaf53907c53c.d: examples/consecutive_browsing.rs

/root/repo/target/debug/examples/consecutive_browsing-70fcfaf53907c53c: examples/consecutive_browsing.rs

examples/consecutive_browsing.rs:
