/root/repo/target/debug/examples/consecutive_browsing-1633cbb3a8b75158.d: examples/consecutive_browsing.rs Cargo.toml

/root/repo/target/debug/examples/libconsecutive_browsing-1633cbb3a8b75158.rmeta: examples/consecutive_browsing.rs Cargo.toml

examples/consecutive_browsing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
