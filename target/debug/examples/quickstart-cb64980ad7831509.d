/root/repo/target/debug/examples/quickstart-cb64980ad7831509.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cb64980ad7831509: examples/quickstart.rs

examples/quickstart.rs:
