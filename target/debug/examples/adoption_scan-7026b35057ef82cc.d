/root/repo/target/debug/examples/adoption_scan-7026b35057ef82cc.d: examples/adoption_scan.rs

/root/repo/target/debug/examples/adoption_scan-7026b35057ef82cc: examples/adoption_scan.rs

examples/adoption_scan.rs:
