/root/repo/target/debug/examples/adaptive_selection-3955ae959c27569d.d: examples/adaptive_selection.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_selection-3955ae959c27569d.rmeta: examples/adaptive_selection.rs Cargo.toml

examples/adaptive_selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
