/root/repo/target/debug/examples/lossy_network-24938996e66d3000.d: examples/lossy_network.rs Cargo.toml

/root/repo/target/debug/examples/liblossy_network-24938996e66d3000.rmeta: examples/lossy_network.rs Cargo.toml

examples/lossy_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
