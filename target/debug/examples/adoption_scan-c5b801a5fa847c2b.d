/root/repo/target/debug/examples/adoption_scan-c5b801a5fa847c2b.d: examples/adoption_scan.rs Cargo.toml

/root/repo/target/debug/examples/libadoption_scan-c5b801a5fa847c2b.rmeta: examples/adoption_scan.rs Cargo.toml

examples/adoption_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
