/root/repo/target/debug/examples/adaptive_selection-0f082965007ebc09.d: examples/adaptive_selection.rs

/root/repo/target/debug/examples/adaptive_selection-0f082965007ebc09: examples/adaptive_selection.rs

examples/adaptive_selection.rs:
