/root/repo/target/debug/examples/lossy_network-21856a05c299a7ac.d: examples/lossy_network.rs

/root/repo/target/debug/examples/lossy_network-21856a05c299a7ac: examples/lossy_network.rs

examples/lossy_network.rs:
