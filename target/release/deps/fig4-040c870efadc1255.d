/root/repo/target/release/deps/fig4-040c870efadc1255.d: crates/experiments/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-040c870efadc1255: crates/experiments/src/bin/fig4.rs

crates/experiments/src/bin/fig4.rs:
