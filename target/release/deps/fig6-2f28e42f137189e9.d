/root/repo/target/release/deps/fig6-2f28e42f137189e9.d: crates/experiments/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-2f28e42f137189e9: crates/experiments/src/bin/fig6.rs

crates/experiments/src/bin/fig6.rs:
