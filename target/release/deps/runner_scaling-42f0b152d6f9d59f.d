/root/repo/target/release/deps/runner_scaling-42f0b152d6f9d59f.d: crates/bench/benches/runner_scaling.rs

/root/repo/target/release/deps/runner_scaling-42f0b152d6f9d59f: crates/bench/benches/runner_scaling.rs

crates/bench/benches/runner_scaling.rs:
