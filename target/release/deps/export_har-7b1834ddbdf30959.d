/root/repo/target/release/deps/export_har-7b1834ddbdf30959.d: crates/experiments/src/bin/export_har.rs

/root/repo/target/release/deps/export_har-7b1834ddbdf30959: crates/experiments/src/bin/export_har.rs

crates/experiments/src/bin/export_har.rs:
