/root/repo/target/release/deps/first_vs_repeat-6f86aae5522fad8e.d: crates/experiments/src/bin/first_vs_repeat.rs

/root/repo/target/release/deps/first_vs_repeat-6f86aae5522fad8e: crates/experiments/src/bin/first_vs_repeat.rs

crates/experiments/src/bin/first_vs_repeat.rs:
