/root/repo/target/release/deps/h3cdn_experiments-786c4e8ab6d3d632.d: crates/experiments/src/lib.rs

/root/repo/target/release/deps/libh3cdn_experiments-786c4e8ab6d3d632.rlib: crates/experiments/src/lib.rs

/root/repo/target/release/deps/libh3cdn_experiments-786c4e8ab6d3d632.rmeta: crates/experiments/src/lib.rs

crates/experiments/src/lib.rs:
