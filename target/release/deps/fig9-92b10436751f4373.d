/root/repo/target/release/deps/fig9-92b10436751f4373.d: crates/experiments/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-92b10436751f4373: crates/experiments/src/bin/fig9.rs

crates/experiments/src/bin/fig9.rs:
