/root/repo/target/release/deps/sensitivity-6200f1b4c53b42fc.d: crates/experiments/src/bin/sensitivity.rs

/root/repo/target/release/deps/sensitivity-6200f1b4c53b42fc: crates/experiments/src/bin/sensitivity.rs

crates/experiments/src/bin/sensitivity.rs:
