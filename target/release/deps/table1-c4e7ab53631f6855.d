/root/repo/target/release/deps/table1-c4e7ab53631f6855.d: crates/experiments/src/bin/table1.rs

/root/repo/target/release/deps/table1-c4e7ab53631f6855: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
