/root/repo/target/release/deps/h3cdn_bench-6e46423dc3169461.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libh3cdn_bench-6e46423dc3169461.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libh3cdn_bench-6e46423dc3169461.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
