/root/repo/target/release/deps/fig8-7e9708b27721ebb2.d: crates/experiments/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-7e9708b27721ebb2: crates/experiments/src/bin/fig8.rs

crates/experiments/src/bin/fig8.rs:
