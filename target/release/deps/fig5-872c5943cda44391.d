/root/repo/target/release/deps/fig5-872c5943cda44391.d: crates/experiments/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-872c5943cda44391: crates/experiments/src/bin/fig5.rs

crates/experiments/src/bin/fig5.rs:
