/root/repo/target/release/deps/h3cdn_web-53261ae3a7f7145b.d: crates/web/src/lib.rs crates/web/src/corpus.rs crates/web/src/domains.rs crates/web/src/resource.rs crates/web/src/spec.rs

/root/repo/target/release/deps/libh3cdn_web-53261ae3a7f7145b.rlib: crates/web/src/lib.rs crates/web/src/corpus.rs crates/web/src/domains.rs crates/web/src/resource.rs crates/web/src/spec.rs

/root/repo/target/release/deps/libh3cdn_web-53261ae3a7f7145b.rmeta: crates/web/src/lib.rs crates/web/src/corpus.rs crates/web/src/domains.rs crates/web/src/resource.rs crates/web/src/spec.rs

crates/web/src/lib.rs:
crates/web/src/corpus.rs:
crates/web/src/domains.rs:
crates/web/src/resource.rs:
crates/web/src/spec.rs:
