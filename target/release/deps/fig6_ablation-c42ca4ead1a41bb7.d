/root/repo/target/release/deps/fig6_ablation-c42ca4ead1a41bb7.d: crates/experiments/src/bin/fig6_ablation.rs

/root/repo/target/release/deps/fig6_ablation-c42ca4ead1a41bb7: crates/experiments/src/bin/fig6_ablation.rs

crates/experiments/src/bin/fig6_ablation.rs:
