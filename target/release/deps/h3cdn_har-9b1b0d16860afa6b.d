/root/repo/target/release/deps/h3cdn_har-9b1b0d16860afa6b.d: crates/har/src/lib.rs crates/har/src/entry.rs crates/har/src/export.rs crates/har/src/reduction.rs

/root/repo/target/release/deps/libh3cdn_har-9b1b0d16860afa6b.rlib: crates/har/src/lib.rs crates/har/src/entry.rs crates/har/src/export.rs crates/har/src/reduction.rs

/root/repo/target/release/deps/libh3cdn_har-9b1b0d16860afa6b.rmeta: crates/har/src/lib.rs crates/har/src/entry.rs crates/har/src/export.rs crates/har/src/reduction.rs

crates/har/src/lib.rs:
crates/har/src/entry.rs:
crates/har/src/export.rs:
crates/har/src/reduction.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
