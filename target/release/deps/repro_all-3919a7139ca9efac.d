/root/repo/target/release/deps/repro_all-3919a7139ca9efac.d: crates/experiments/src/bin/repro_all.rs

/root/repo/target/release/deps/repro_all-3919a7139ca9efac: crates/experiments/src/bin/repro_all.rs

crates/experiments/src/bin/repro_all.rs:
