/root/repo/target/release/deps/table2-c827c928d839e221.d: crates/experiments/src/bin/table2.rs

/root/repo/target/release/deps/table2-c827c928d839e221: crates/experiments/src/bin/table2.rs

crates/experiments/src/bin/table2.rs:
