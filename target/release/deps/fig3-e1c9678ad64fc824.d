/root/repo/target/release/deps/fig3-e1c9678ad64fc824.d: crates/experiments/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-e1c9678ad64fc824: crates/experiments/src/bin/fig3.rs

crates/experiments/src/bin/fig3.rs:
