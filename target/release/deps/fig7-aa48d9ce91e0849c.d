/root/repo/target/release/deps/fig7-aa48d9ce91e0849c.d: crates/experiments/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-aa48d9ce91e0849c: crates/experiments/src/bin/fig7.rs

crates/experiments/src/bin/fig7.rs:
