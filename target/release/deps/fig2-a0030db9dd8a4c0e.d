/root/repo/target/release/deps/fig2-a0030db9dd8a4c0e.d: crates/experiments/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-a0030db9dd8a4c0e: crates/experiments/src/bin/fig2.rs

crates/experiments/src/bin/fig2.rs:
