/root/repo/target/release/deps/h3cdn_browser-c8168ea018c8379d.d: crates/browser/src/lib.rs crates/browser/src/client.rs crates/browser/src/config.rs crates/browser/src/host.rs crates/browser/src/server.rs crates/browser/src/visit.rs

/root/repo/target/release/deps/libh3cdn_browser-c8168ea018c8379d.rlib: crates/browser/src/lib.rs crates/browser/src/client.rs crates/browser/src/config.rs crates/browser/src/host.rs crates/browser/src/server.rs crates/browser/src/visit.rs

/root/repo/target/release/deps/libh3cdn_browser-c8168ea018c8379d.rmeta: crates/browser/src/lib.rs crates/browser/src/client.rs crates/browser/src/config.rs crates/browser/src/host.rs crates/browser/src/server.rs crates/browser/src/visit.rs

crates/browser/src/lib.rs:
crates/browser/src/client.rs:
crates/browser/src/config.rs:
crates/browser/src/host.rs:
crates/browser/src/server.rs:
crates/browser/src/visit.rs:
