/root/repo/target/release/deps/h3cdn_http-6cea27ccaf39a53d.d: crates/http/src/lib.rs crates/http/src/client.rs crates/http/src/h1.rs crates/http/src/h2.rs crates/http/src/h3.rs crates/http/src/server.rs crates/http/src/types.rs

/root/repo/target/release/deps/libh3cdn_http-6cea27ccaf39a53d.rlib: crates/http/src/lib.rs crates/http/src/client.rs crates/http/src/h1.rs crates/http/src/h2.rs crates/http/src/h3.rs crates/http/src/server.rs crates/http/src/types.rs

/root/repo/target/release/deps/libh3cdn_http-6cea27ccaf39a53d.rmeta: crates/http/src/lib.rs crates/http/src/client.rs crates/http/src/h1.rs crates/http/src/h2.rs crates/http/src/h3.rs crates/http/src/server.rs crates/http/src/types.rs

crates/http/src/lib.rs:
crates/http/src/client.rs:
crates/http/src/h1.rs:
crates/http/src/h2.rs:
crates/http/src/h3.rs:
crates/http/src/server.rs:
crates/http/src/types.rs:
