/root/repo/target/release/deps/report-c42f705a0f990a4f.d: crates/experiments/src/bin/report.rs

/root/repo/target/release/deps/report-c42f705a0f990a4f: crates/experiments/src/bin/report.rs

crates/experiments/src/bin/report.rs:
