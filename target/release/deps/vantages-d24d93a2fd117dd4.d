/root/repo/target/release/deps/vantages-d24d93a2fd117dd4.d: crates/experiments/src/bin/vantages.rs

/root/repo/target/release/deps/vantages-d24d93a2fd117dd4: crates/experiments/src/bin/vantages.rs

crates/experiments/src/bin/vantages.rs:
