/root/repo/target/release/deps/h3cdn_sim_core-14ec8e956bff7bd5.d: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/rng.rs crates/sim-core/src/time.rs crates/sim-core/src/units.rs

/root/repo/target/release/deps/libh3cdn_sim_core-14ec8e956bff7bd5.rlib: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/rng.rs crates/sim-core/src/time.rs crates/sim-core/src/units.rs

/root/repo/target/release/deps/libh3cdn_sim_core-14ec8e956bff7bd5.rmeta: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/rng.rs crates/sim-core/src/time.rs crates/sim-core/src/units.rs

crates/sim-core/src/lib.rs:
crates/sim-core/src/event.rs:
crates/sim-core/src/rng.rs:
crates/sim-core/src/time.rs:
crates/sim-core/src/units.rs:
