/root/repo/target/release/deps/table3-c7300744b9879ede.d: crates/experiments/src/bin/table3.rs

/root/repo/target/release/deps/table3-c7300744b9879ede: crates/experiments/src/bin/table3.rs

crates/experiments/src/bin/table3.rs:
