/root/repo/target/release/deps/h3cdn_repro-456f5784e0bc3f52.d: src/lib.rs

/root/repo/target/release/deps/libh3cdn_repro-456f5784e0bc3f52.rlib: src/lib.rs

/root/repo/target/release/deps/libh3cdn_repro-456f5784e0bc3f52.rmeta: src/lib.rs

src/lib.rs:
