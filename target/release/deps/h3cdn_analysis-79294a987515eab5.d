/root/repo/target/release/deps/h3cdn_analysis-79294a987515eab5.d: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/groups.rs crates/analysis/src/kmeans.rs crates/analysis/src/linfit.rs crates/analysis/src/stats.rs

/root/repo/target/release/deps/libh3cdn_analysis-79294a987515eab5.rlib: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/groups.rs crates/analysis/src/kmeans.rs crates/analysis/src/linfit.rs crates/analysis/src/stats.rs

/root/repo/target/release/deps/libh3cdn_analysis-79294a987515eab5.rmeta: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/groups.rs crates/analysis/src/kmeans.rs crates/analysis/src/linfit.rs crates/analysis/src/stats.rs

crates/analysis/src/lib.rs:
crates/analysis/src/bootstrap.rs:
crates/analysis/src/groups.rs:
crates/analysis/src/kmeans.rs:
crates/analysis/src/linfit.rs:
crates/analysis/src/stats.rs:
