/root/repo/target/release/deps/h3cdn_cdn-b8996cc978454873.d: crates/cdn/src/lib.rs crates/cdn/src/edge.rs crates/cdn/src/locedge.rs crates/cdn/src/provider.rs crates/cdn/src/topology.rs

/root/repo/target/release/deps/libh3cdn_cdn-b8996cc978454873.rlib: crates/cdn/src/lib.rs crates/cdn/src/edge.rs crates/cdn/src/locedge.rs crates/cdn/src/provider.rs crates/cdn/src/topology.rs

/root/repo/target/release/deps/libh3cdn_cdn-b8996cc978454873.rmeta: crates/cdn/src/lib.rs crates/cdn/src/edge.rs crates/cdn/src/locedge.rs crates/cdn/src/provider.rs crates/cdn/src/topology.rs

crates/cdn/src/lib.rs:
crates/cdn/src/edge.rs:
crates/cdn/src/locedge.rs:
crates/cdn/src/provider.rs:
crates/cdn/src/topology.rs:
