/root/repo/target/release/deps/h3cdn_netsim-82a442eb193eda2d.d: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/network.rs crates/netsim/src/node.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/libh3cdn_netsim-82a442eb193eda2d.rlib: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/network.rs crates/netsim/src/node.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/libh3cdn_netsim-82a442eb193eda2d.rmeta: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/link.rs crates/netsim/src/loss.rs crates/netsim/src/network.rs crates/netsim/src/node.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/link.rs:
crates/netsim/src/loss.rs:
crates/netsim/src/network.rs:
crates/netsim/src/node.rs:
crates/netsim/src/topology.rs:
