//! Workspace-root crate: hosts the runnable `examples/` and the
//! cross-crate integration tests in `tests/`. The library surface is the
//! [`h3cdn`] facade, re-exported for the examples' convenience.

pub use h3cdn::*;
