//! Offline vendored shim of `serde`.
//!
//! This workspace builds in a hermetic container with no crates.io
//! access, so the real `serde` cannot be fetched. This crate provides the
//! subset of its surface the workspace actually uses — the `Serialize` /
//! `Deserialize` traits (including the derive macros, via the companion
//! `serde_derive` shim) over a small self-describing data model
//! ([`Content`]) that the vendored `serde_json` renders to and parses
//! from.
//!
//! The shim intentionally mirrors real-serde semantics for everything the
//! repo relies on: field order is preserved, `Option` maps to
//! `null`/value, unit enums serialise as their variant name, newtype
//! structs are transparent, and non-finite floats serialise as `null`
//! (matching `serde_json`'s lossy float handling).

pub mod content;
pub mod de;

pub use content::{Content, Number};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialisation into the self-describing [`Content`] model.
pub trait Serialize {
    /// Converts `self` into a [`Content`] tree.
    fn to_content(&self) -> Content;
}

/// Deserialisation from the self-describing [`Content`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Content`] tree.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

/// Deserialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Num(Number::U(*self as u64))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::Num(Number::U(v as u64))
                } else {
                    Content::Num(Number::I(v))
                }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Num(Number::F(*self))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::Num(Number::F(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        // JSON object keys are strings; render scalar keys through their
        // JSON scalar form, exactly as serde_json does for integer keys.
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content().to_key_string(), v.to_content()))
                .collect(),
        )
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                c.as_u64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| {
                        Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            c
                        ))
                    })
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                c.as_i64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| {
                        Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            c
                        ))
                    })
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            // serde_json writes non-finite floats as null; accept the
            // round trip.
            Content::Null => Ok(f64::NAN),
            _ => c
                .as_f64()
                .ok_or_else(|| Error::custom(format!("expected f64, got {c:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Deserialize for &'static str {
    fn from_content(c: &Content) -> Result<Self, Error> {
        // The workspace deserialises `&'static str` fields only in tests;
        // leaking the handful of short strings involved is the pragmatic
        // way to satisfy the lifetime.
        String::from_content(c).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}
