//! Helpers used by the code `serde_derive` generates.

use crate::{Content, Deserialize, Error};

/// Looks up `key` in a serialised struct's entries and deserialises it.
///
/// Missing keys are an error, exactly as in derived real-serde
/// deserialisers without `#[serde(default)]`.
pub fn field<T: Deserialize>(entries: &[(String, Content)], key: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_content(v).map_err(|e| Error::custom(format!("field `{key}`: {e}")))
        }
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

/// Extracts the entries of a serialised struct.
pub fn entries<'c>(c: &'c Content, ty: &str) -> Result<&'c [(String, Content)], Error> {
    c.as_object()
        .map(Vec::as_slice)
        .ok_or_else(|| Error::custom(format!("expected object for `{ty}`")))
}
