//! The self-describing data model shared by the vendored `serde` and
//! `serde_json` shims. `serde_json::Value` is an alias of [`Content`].

/// A JSON-shaped value tree.
///
/// Maps preserve insertion order (like `serde_json` with its
/// `preserve_order` feature), which keeps serialisation deterministic
/// and byte-stable for identical inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Content>),
    /// JSON object, insertion-ordered.
    Map(Vec<(String, Content)>),
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    fn as_f64(self) -> f64 {
        match self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b,
            // Cross-variant comparisons go through f64, which is exact
            // for every integer the workspace serialises.
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

impl Content {
    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::Num(Number::U(v)) => Some(*v),
            Content::Num(Number::I(v)) => u64::try_from(*v).ok(),
            Content::Num(Number::F(v)) if v.fract() == 0.0 && *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The numeric value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::Num(Number::U(v)) => i64::try_from(*v).ok(),
            Content::Num(Number::I(v)) => Some(*v),
            Content::Num(Number::F(v)) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Content)>> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up an object key.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// The string an object key renders to when this scalar is used as a
    /// map key (integer keys become their decimal form, as in
    /// `serde_json`).
    pub fn to_key_string(&self) -> String {
        match self {
            Content::Str(s) => s.clone(),
            Content::Num(Number::U(v)) => v.to_string(),
            Content::Num(Number::I(v)) => v.to_string(),
            Content::Num(Number::F(v)) => format!("{v:?}"),
            Content::Bool(b) => b.to_string(),
            other => panic!("unsupported JSON map key: {other:?}"),
        }
    }
}

static NULL: Content = Content::Null;

impl std::ops::Index<&str> for Content {
    type Output = Content;

    /// Object field access; missing keys and non-objects yield `null`,
    /// matching `serde_json`'s panic-free indexing.
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;

    /// Array element access; out-of-range and non-arrays yield `null`.
    fn index(&self, idx: usize) -> &Content {
        self.as_array().and_then(|v| v.get(idx)).unwrap_or(&NULL)
    }
}

impl std::fmt::Display for Content {
    /// Compact JSON rendering (same shape as `serde_json::to_string`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&render(self, None, 0))
    }
}

/// Renders a content tree as JSON. `indent` of `None` is compact;
/// `Some(width)` is pretty-printed.
pub fn render(c: &Content, indent: Option<usize>, depth: usize) -> String {
    match c {
        Content::Null => "null".to_string(),
        Content::Bool(b) => b.to_string(),
        Content::Num(Number::U(v)) => v.to_string(),
        Content::Num(Number::I(v)) => v.to_string(),
        Content::Num(Number::F(v)) => {
            if v.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form, the
                // same family of output ryu gives serde_json.
                format!("{v:?}")
            } else {
                // serde_json cannot represent non-finite numbers; it
                // writes null.
                "null".to_string()
            }
        }
        Content::Str(s) => escape_json(s),
        Content::Seq(items) => render_seq(items, indent, depth),
        Content::Map(entries) => render_map(entries, indent, depth),
    }
}

fn render_seq(items: &[Content], indent: Option<usize>, depth: usize) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    match indent {
        None => {
            let inner: Vec<String> = items.iter().map(|v| render(v, None, 0)).collect();
            format!("[{}]", inner.join(","))
        }
        Some(w) => {
            let pad = " ".repeat(w * (depth + 1));
            let close = " ".repeat(w * depth);
            let inner: Vec<String> = items
                .iter()
                .map(|v| format!("{pad}{}", render(v, indent, depth + 1)))
                .collect();
            format!("[\n{}\n{close}]", inner.join(",\n"))
        }
    }
}

fn render_map(entries: &[(String, Content)], indent: Option<usize>, depth: usize) -> String {
    if entries.is_empty() {
        return "{}".to_string();
    }
    match indent {
        None => {
            let inner: Vec<String> = entries
                .iter()
                .map(|(k, v)| format!("{}:{}", escape_json(k), render(v, None, 0)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
        Some(w) => {
            let pad = " ".repeat(w * (depth + 1));
            let close = " ".repeat(w * depth);
            let inner: Vec<String> = entries
                .iter()
                .map(|(k, v)| format!("{pad}{}: {}", escape_json(k), render(v, indent, depth + 1)))
                .collect();
            format!("{{\n{}\n{close}}}", inner.join(",\n"))
        }
    }
}

/// Escapes a string into its quoted JSON form.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// Ergonomic equality against plain Rust values, as serde_json provides.

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Content {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Content {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Content::Bool(b) if b == other)
    }
}

macro_rules! impl_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Content {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Content::Num(n) => n.as_f64() == (*other as f64),
                    _ => false,
                }
            }
        }
    )*};
}
impl_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
