//! Offline vendored shim of `criterion`.
//!
//! Implements the timing-harness subset the workspace's benches use:
//! [`Criterion::bench_function`] with [`Bencher::iter`], `sample_size`,
//! and the `criterion_group!`/`criterion_main!` macros. Each benchmark
//! runs a short warm-up, then `sample_size` timed samples, and reports
//! min/mean/max per iteration. Results are also appended to
//! `target/criterion-shim/<name>.json` so external tooling can track
//! timings across runs.

use std::time::{Duration, Instant};

/// The benchmark harness.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs the closure repeatedly, timing each sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{name:<40} time: [{min:>12?} {mean:>12?} {max:>12?}]  ({} samples)",
            self.samples.len()
        );
        self.write_json(name, mean, *min, *max);
    }

    /// Best-effort JSON record under `target/criterion-shim/`; failures
    /// (read-only target dir, etc.) are ignored.
    fn write_json(&self, name: &str, mean: Duration, min: Duration, max: Duration) {
        let dir = std::path::Path::new("target").join("criterion-shim");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let safe: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let body = format!(
            "{{\"name\":{name:?},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}\n",
            mean.as_nanos(),
            min.as_nanos(),
            max.as_nanos(),
            self.samples.len()
        );
        let _ = std::fs::write(dir.join(format!("{safe}.json")), body);
    }
}

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Groups benchmark target functions under one entry function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as Default>::default();
            targets = $($target),+
        }
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (`--bench`, filters); this shim
            // runs every group regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("shim_smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
