//! Offline vendored shim of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! item shapes this workspace uses — named-field structs, newtype
//! structs, and unit-variant enums — by walking the raw token stream
//! (no `syn`/`quote`, which cannot be fetched offline). Generated code
//! targets the vendored `serde` shim's `Content` data model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    /// `struct Name { field, ... }`
    Struct { name: String, fields: Vec<String> },
    /// `struct Name(Type);`
    Newtype { name: String },
    /// `enum Name { Variant, ... }` (unit variants only)
    Enum { name: String, variants: Vec<String> },
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracketed group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other}"),
    };
    i += 1;
    match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            // Only single-field (newtype) tuple structs are supported:
            // a top-level comma outside any <...> means more fields.
            let mut depth = 0i32;
            for t in &inner {
                if let TokenTree::Punct(p) = t {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 0 => panic!(
                            "serde_derive shim: multi-field tuple struct `{name}` unsupported"
                        ),
                        _ => {}
                    }
                }
            }
            Item::Newtype { name }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item::Enum {
            name: name.clone(),
            variants: parse_unit_variants(g.stream(), &name),
        },
        (k, t) => panic!("serde_derive shim: unsupported item `{k}` body {t:?}"),
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other}"),
        };
        fields.push(field);
        i += 1;
        // Expect `:`, then skip the type up to the next top-level comma.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:`, got {other}"),
        }
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Variant names of a unit-variant enum body.
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => variants.push(id.to_string()),
            other => panic!("serde_derive shim: expected variant in `{enum_name}`, got {other}"),
        }
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => panic!(
                "serde_derive shim: only unit variants supported in `{enum_name}`, got {other}"
            ),
        }
    }
    variants
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_content(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n\
                 {pushes}\n\
                 ::serde::Content::Map(__m)\n}}\n}}"
            )
        }
        Item::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
             ::serde::Serialize::to_content(&self.0)\n}}\n}}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Str(match self {{ {arms} }}.to_string())\n}}\n}}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated code parses")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(__entries, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(__c: &::serde::Content) \
                 -> Result<Self, ::serde::Error> {{\n\
                 let __entries = ::serde::de::entries(__c, {name:?})?;\n\
                 Ok({name} {{ {inits} }})\n}}\n}}"
            )
        }
        Item::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) \
             -> Result<Self, ::serde::Error> {{\n\
             Ok({name}(::serde::Deserialize::from_content(__c)?))\n}}\n}}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(__c: &::serde::Content) \
                 -> Result<Self, ::serde::Error> {{\n\
                 match __c.as_str() {{\n\
                 Some(__s) => match __s {{ {arms} _ => Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant {{__s:?}}\"))) }},\n\
                 None => Err(::serde::Error::custom(\
                 format!(\"expected string for {name}, got {{__c:?}}\"))),\n}}\n}}\n}}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated code parses")
}
