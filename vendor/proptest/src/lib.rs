//! Offline vendored shim of `proptest`.
//!
//! The workspace's property tests use a small, stable slice of the real
//! crate: the `proptest!` macro, numeric-range strategies,
//! `prop::collection::vec`, `Just`, `prop_oneof!`, `proptest::bool::ANY`,
//! and the `prop_assert*` family. This shim reimplements exactly that
//! slice with a deterministic splitmix64 generator seeded per test
//! function, so failures reproduce across runs. There is no shrinking:
//! a failing case panics with the generated inputs in scope, which the
//! `prop_assert*` messages already surface.

/// Strategy abstraction: something that can generate values.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of an output type from a random source.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union from its branches.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_signed_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    self.start + (self.end - self.start) * unit
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating vectors of an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating booleans uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Test-runner configuration and the deterministic generator.
pub mod test_runner {
    /// Subset of proptest's `Config` the workspace sets.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for API compatibility; this shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            // Smaller than real proptest's 256: these tests drive full
            // packet-level page-load simulations per case.
            Config {
                cases: 32,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic splitmix64 generator, seeded from the test name so
    /// every test function explores a stable, distinct sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary label (the `proptest!` macro passes
        /// the test function's name).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` of zero yields zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            // Multiply-shift bounded draw (Lemire); bias is negligible
            // for test-generation purposes.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The subset of `proptest::prelude` the workspace imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// `prop::` path alias (`prop::collection::vec`).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Defines property tests: each `fn` runs `config.cases` times over
/// freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = (<$crate::test_runner::Config as Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                // A `prop_assume!` miss skips the case via `continue`.
                #[allow(clippy::redundant_closure_call)]
                $body
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(Box::new($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 64,
            ..ProptestConfig::default()
        })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_only_yields_branches(v in prop_oneof![Just(1u8), Just(9u8)]) {
            prop_assert!(v == 1 || v == 9, "got {v}");
        }

        #[test]
        fn assume_skips(v in 0u32..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1_000, 1..50);
        let mut a = crate::test_runner::TestRng::deterministic("label");
        let mut b = crate::test_runner::TestRng::deterministic("label");
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
