//! Offline vendored shim of `serde_json`.
//!
//! Provides the subset of the real crate's surface this workspace uses:
//! [`Value`], [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`], and the [`json!`] macro. Rendering is deterministic:
//! identical inputs produce byte-identical JSON (maps preserve insertion
//! order, floats use Rust's shortest round-trip form).

pub use serde::content::{Content as Value, Number};

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Serialises to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::content::render(&value.to_content(), None, 0))
}

/// Serialises to pretty-printed JSON (two-space indent, like the real
/// `serde_json`).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::content::render(&value.to_content(), Some(2), 0))
}

/// Parses a JSON document and deserialises it into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse::parse(s).map_err(Error)?;
    Ok(T::from_content(&value)?)
}

mod parse {
    use super::{Number, Value};

    pub fn parse(s: &str) -> std::result::Result<Value, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> std::result::Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
        }
    }

    fn literal(
        b: &[u8],
        pos: &mut usize,
        lit: &str,
        v: Value,
    ) -> std::result::Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {pos}", pos = *pos))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> std::result::Result<Value, String> {
        *pos += 1; // '{'
        let mut entries = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {pos}", pos = *pos));
            }
            *pos += 1;
            let v = value(b, pos)?;
            entries.push((key, v));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> std::result::Result<Value, String> {
        *pos += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> std::result::Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    *pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> std::result::Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut float = false;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        if text.is_empty() || text == "-" {
            return Err(format!("invalid number at byte {start}"));
        }
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|e| format!("invalid number {text:?}: {e}"))
    }
}

/// Builds a [`Value`] from a JSON literal, interpolating Rust
/// expressions, as in the real `serde_json`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Seq(Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut __items: Vec<$crate::Value> = Vec::new();
        $crate::json_internal!(@array __items () $($tt)+);
        $crate::Value::Seq(__items)
    }};
    ({}) => { $crate::Value::Map(Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut __entries: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_internal!(@object __entries $($tt)+);
        $crate::Value::Map(__entries)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: appends one object entry.
#[doc(hidden)]
pub fn __json_push_entry(entries: &mut Vec<(String, Value)>, key: &str, value: Value) {
    entries.push((key.to_string(), value));
}

/// Implementation detail of [`json!`]: appends one array item.
#[doc(hidden)]
pub fn __json_push_item(items: &mut Vec<Value>, value: Value) {
    items.push(value);
}

/// Implementation detail of [`json!`]: a token-tree muncher that splits
/// object entries and array items on top-level commas.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // -- objects: `"key": <value tts...> , ...` -----------------------------
    (@object $m:ident) => {};
    (@object $m:ident $key:literal : $($rest:tt)*) => {
        $crate::json_internal!(@value $m $key () $($rest)*)
    };
    // Value finished by a top-level comma.
    (@value $m:ident $key:literal ($($v:tt)*) , $($rest:tt)*) => {
        $crate::__json_push_entry(&mut $m, $key, $crate::json!($($v)*));
        $crate::json_internal!(@object $m $($rest)*)
    };
    // Value finished by end of input.
    (@value $m:ident $key:literal ($($v:tt)*)) => {
        $crate::__json_push_entry(&mut $m, $key, $crate::json!($($v)*));
    };
    // Accumulate one more token of the value.
    (@value $m:ident $key:literal ($($v:tt)*) $t:tt $($rest:tt)*) => {
        $crate::json_internal!(@value $m $key ($($v)* $t) $($rest)*)
    };
    // -- arrays: `<value tts...> , ...` -------------------------------------
    (@array $items:ident ($($v:tt)*) , $($rest:tt)*) => {
        $crate::__json_push_item(&mut $items, $crate::json!($($v)*));
        $crate::json_internal!(@array $items () $($rest)*)
    };
    (@array $items:ident ($($v:tt)+)) => {
        $crate::__json_push_item(&mut $items, $crate::json!($($v)+));
    };
    (@array $items:ident ()) => {};
    (@array $items:ident ($($v:tt)*) $t:tt $($rest:tt)*) => {
        $crate::json_internal!(@array $items ($($v)* $t) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_round_trip() {
        let v = json!({
            "a": 1,
            "b": -2,
            "c": 2.5,
            "d": "x",
            "e": [],
            "f": {"g": null, "h": true},
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            "{\"a\":1,\"b\":-2,\"c\":2.5,\"d\":\"x\",\"e\":[],\"f\":{\"g\":null,\"h\":true}}"
        );
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["f"]["h"], true);
        assert_eq!(back["a"], 1);
        assert_eq!(back["c"], 2.5);
        assert_eq!(back["d"], "x");
    }

    #[test]
    fn expressions_interpolate() {
        let name = String::from("quic");
        let n: u64 = 7;
        let v = json!({ "name": name, "n": n, "arr": [1, 2, n] });
        assert_eq!(v["name"], "quic");
        assert_eq!(v["arr"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = json!({"a": [1]});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn non_finite_floats_render_null() {
        let v = to_value(&f64::NAN);
        assert_eq!(to_string(&v).unwrap(), "null");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v: Value = from_str(" { \"a\\n\" : [ 1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(v["a\n"][1], "A");
    }
}
