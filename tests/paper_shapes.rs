//! The paper's headline result shapes, asserted end to end at a scale
//! that keeps the suite fast. EXPERIMENTS.md records the paper-scale
//! numbers; these tests pin the directions that must never regress.

use h3cdn::{CampaignConfig, MeasurementCampaign, Vantage};

fn campaign(pages: usize, seed: u64) -> MeasurementCampaign {
    MeasurementCampaign::new(CampaignConfig::small(pages, seed))
}

#[test]
fn takeaway_2_h3_reduces_plt_on_average() {
    let c = campaign(12, 41);
    let total: f64 = (0..12)
        .map(|s| c.compare_page(s, Vantage::Utah).plt_reduction_ms)
        .sum();
    let mean = total / 12.0;
    assert!(mean > 0.0, "mean PLT reduction {mean:.1}ms");
}

#[test]
fn fig6b_connection_phase_contributes_most() {
    let c = campaign(8, 42);
    let cmps: Vec<_> = (0..8).map(|s| c.compare_page(s, Vantage::Utah)).collect();
    let fig = h3cdn_experiments::fig6::run(&cmps);
    // Handshaking entries save connect time on average; the receive
    // median is ~0 (small CDN resources) — §VI-B's findings.
    assert!(fig.connect_mean_nonzero > 0.0);
    assert!(fig.receive_median.abs() < 2.0);
    assert!(fig.wait_median <= 0.0);
}

#[test]
fn table_ii_h2_leads_h3_follows_h1_trails() {
    let c = campaign(12, 43);
    let t = h3cdn_experiments::table2::run(&c, Vantage::Utah);
    assert!(t.h2.total() > t.h3.total());
    assert!(t.h3.total() > t.others.total());
    assert!(
        t.others.cdn == 0,
        "CDN requests never fall back to HTTP/1.x"
    );
}

#[test]
fn fig9_loss_amplifies_h3_advantage() {
    // At this sample size the OLS slope is noise-dominated (single lossy
    // pages swing it), so pin the robust core of Fig. 9: the *mean*
    // reduction grows substantially with loss. The slope ordering is
    // checked at paper scale in EXPERIMENTS.md and at moderate scale in
    // the fig9 unit test.
    let c = campaign(16, 44);
    let fig = h3cdn_experiments::fig9::run(&c, Vantage::Utah, &[0.0, 1.5]);
    let mean = |s: &h3cdn_experiments::fig9::Fig9Series| {
        s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64
    };
    let clean = mean(&fig.series[0]);
    let lossy = mean(&fig.series[1]);
    assert!(
        lossy > clean + 20.0,
        "loss must widen H3's advantage: {clean:.1} -> {lossy:.1}"
    );
}

#[test]
fn fig8_shared_providers_pay_off_under_consecutive_visits() {
    let c = campaign(12, 45);
    let (h2, h3) = c.consecutive_pass(Vantage::Utah);
    // Later pages resume; overall PLT reduction stays positive.
    let resumed: usize = h3
        .iter()
        .skip(1)
        .map(h3cdn::har::HarPage::resumed_connection_count)
        .sum();
    assert!(resumed > 0);
    let mean_red: f64 = h2
        .iter()
        .zip(&h3)
        .skip(1)
        .map(|(a, b)| a.plt_ms - b.plt_ms)
        .sum::<f64>()
        / (h2.len() - 1) as f64;
    assert!(
        mean_red > 0.0,
        "consecutive-visit reduction {mean_red:.1}ms"
    );
}

#[test]
fn h3_enabled_share_emerges_from_provider_adoption() {
    // Table II's 25.8 %: the measured H3 share of CDN requests must land
    // near the calibrated provider adoption mix even on a subsample.
    let c = campaign(30, 46);
    let t = h3cdn_experiments::table2::run(&c, Vantage::Utah);
    let cdn_h3 = t.h3.cdn as f64 / t.cdn_total() as f64;
    assert!(
        (0.25..=0.55).contains(&cdn_h3),
        "CDN H3 share {cdn_h3:.3} out of calibrated range"
    );
}
