//! Determinism of the parallel campaign runner.
//!
//! The headline guarantee of `h3cdn::runner`: every campaign API is a
//! pure function of its configuration, and its output — down to the
//! serialized bytes — does not depend on the worker count. These tests
//! pin that guarantee on the real measurement pipeline (compare_all,
//! the Fig. 9 loss sweep, the full report) and on the runner's merge
//! order itself via a property test.

use h3cdn::{run_keyed, CampaignConfig, MeasurementCampaign, RunnerConfig, Vantage};
use h3cdn_experiments::fig9;
use proptest::prelude::*;

/// A small two-vantage campaign pinned to `jobs` workers.
fn campaign(jobs: usize) -> MeasurementCampaign {
    let mut cfg = CampaignConfig::small(4, 21);
    cfg.vantages = vec![Vantage::Utah, Vantage::Clemson];
    cfg.runner = RunnerConfig::default().with_jobs(jobs);
    MeasurementCampaign::new(cfg)
}

#[test]
fn compare_all_json_is_byte_identical_across_worker_counts() {
    let serial = serde_json::to_string(&campaign(1).compare_all()).expect("serialises");
    for jobs in [2, 8] {
        let parallel = serde_json::to_string(&campaign(jobs).compare_all()).expect("serialises");
        assert_eq!(serial, parallel, "jobs={jobs}");
    }
    assert!(serial.contains("plt_reduction_ms"));
}

#[test]
fn fig9_sweep_json_is_byte_identical_across_worker_counts() {
    let run = |jobs| {
        let c = campaign(jobs);
        let fig = fig9::run_with_repeats(&c, Vantage::Utah, &[0.0, 1.0], 2);
        serde_json::to_string(&fig).expect("serialises")
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial, parallel);
    assert!(serial.contains("loss_percent"));
}

#[test]
fn full_report_is_byte_identical_across_worker_counts() {
    let opts = h3cdn_experiments::report::ReportOptions {
        loss_percents: vec![0.0],
        fig9_repeats: 1,
        warmup: 1,
        ..h3cdn_experiments::report::ReportOptions::default()
    };
    let serial = h3cdn_experiments::report::generate_report(&campaign(1), &opts);
    let parallel = h3cdn_experiments::report::generate_report(&campaign(8), &opts);
    assert_eq!(serial, parallel);
}

#[test]
fn h3cdn_jobs_env_var_does_not_change_results() {
    // `H3CDN_JOBS` may only change the worker count, never the bytes.
    let baseline = serde_json::to_string(&campaign(1).compare_all()).expect("serialises");
    std::env::set_var("H3CDN_JOBS", "8");
    let mut cfg = CampaignConfig::small(4, 21);
    cfg.vantages = vec![Vantage::Utah, Vantage::Clemson];
    cfg.runner = RunnerConfig::from_env();
    assert_eq!(cfg.runner.effective_jobs(), 8);
    let under_env =
        serde_json::to_string(&MeasurementCampaign::new(cfg).compare_all()).expect("serialises");
    std::env::remove_var("H3CDN_JOBS");
    assert_eq!(baseline, under_env);
}

proptest! {
    /// The runner's merge order is total and stable: for any multiset of
    /// job keys, results come back sorted by key with equal keys in
    /// submission order — identically for every worker count.
    #[test]
    fn merge_order_is_total_and_stable(
        keys in prop::collection::vec((0u32..4, 0u32..4, 0u32..4), 0..48),
        jobs in 1usize..9,
    ) {
        // Payload = submission index, so stability is observable even
        // for duplicate keys.
        let submitted: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, move || i))
            .collect();
        let got = run_keyed(&RunnerConfig::default().with_jobs(jobs), submitted);

        // Expected: stable sort of (key, submission index) by key.
        let mut want: Vec<_> = keys.iter().copied().enumerate().map(|(i, k)| (k, i)).collect();
        want.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(&got, &want);

        // Totality: keys ascending; stability: ties ascending by index.
        for pair in got.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1);
            }
        }
    }
}
