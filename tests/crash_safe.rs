//! Crash-safety of the durable campaign layer, end to end.
//!
//! The contract under test: a campaign interrupted after *any* K of N
//! jobs and resumed — at any worker count — produces serialized output
//! byte-identical to an uninterrupted run; a configuration change
//! (stale fingerprint) wipes the journal and re-executes everything;
//! and a deterministically panicking page is quarantined with a usable
//! repro command while every other page completes.

use std::path::PathBuf;

use h3cdn::persist::{fnv1a64, Fingerprint, Manifest, RunDir, MANIFEST_VERSION};
use h3cdn::runner::durable::{backoff_ms, DurableContext, RetryPolicy};
use h3cdn::{CampaignConfig, MeasurementCampaign, RunnerConfig, Vantage};

const PAGES: usize = 3;
const SEED: u64 = 11;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "h3cdn-crash-safe-{tag}-{}-{:x}",
        std::process::id(),
        fnv1a64(tag.as_bytes())
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn manifest(seed: u64) -> Manifest {
    Manifest {
        version: MANIFEST_VERSION,
        run_id: "crash-safe-test".to_owned(),
        fingerprint: Fingerprint {
            seed,
            scenario: "crash_safe".to_owned(),
            git_hash: "test".to_owned(),
            args: vec!["--pages".to_owned(), PAGES.to_string()],
        },
        argv: Vec::new(),
    }
}

/// A small one-vantage campaign with the durable layer attached.
fn durable_campaign(jobs: usize, run: &RunDir) -> MeasurementCampaign {
    let cfg = CampaignConfig::small(PAGES, SEED)
        .with_runner(RunnerConfig::default().with_jobs(jobs))
        .with_durable(Some(DurableContext::new(SEED).with_checkpoint(run.clone())));
    MeasurementCampaign::new(cfg)
}

/// The serialized bytes of the campaign's full paired measurement.
fn measure(c: &MeasurementCampaign) -> String {
    serde_json::to_string(&c.compare_vantage(Vantage::Utah)).expect("serialises")
}

/// All journal entry paths under a run, sorted.
fn journal_files(run: &RunDir) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![run.root().join("jobs")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "job") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[test]
fn resume_after_any_interruption_point_is_bit_identical() {
    // Uninterrupted ground truth, no durable layer at all.
    let plain = MeasurementCampaign::new(CampaignConfig::small(PAGES, SEED));
    let want = measure(&plain);

    let root = scratch("kofn");
    let run = RunDir::at(root.clone());

    // One full durable run to populate the journal.
    run.prepare(&manifest(SEED), false).expect("prepare");
    let full = durable_campaign(2, &run);
    assert_eq!(measure(&full), want, "durable layer is transparent");
    assert!(full.take_quarantine().is_empty());
    let files = journal_files(&run);
    let n = files.len();
    assert_eq!(n, 2 * PAGES, "one journal entry per visit side");

    // Interrupt after K of N jobs (K = 0 — killed before any journal
    // write — and K = N-1 — killed one job before the finish line),
    // then resume at 1 and 4 workers. Output must be byte-identical.
    for kept in [0, n - 1] {
        for jobs in [1usize, 4] {
            run.prepare(&manifest(SEED), false).expect("reset");
            let seed_run = durable_campaign(2, &run);
            let _ = measure(&seed_run);
            let files = journal_files(&run);
            assert_eq!(files.len(), n);
            for dropped in &files[kept..] {
                std::fs::remove_file(dropped).expect("simulate interruption");
            }

            let kept_on_resume = run.prepare(&manifest(SEED), true).expect("resume prepare");
            assert!(kept_on_resume, "matching fingerprint keeps the journal");
            let resumed = durable_campaign(jobs, &run);
            assert_eq!(
                measure(&resumed),
                want,
                "resume after {kept}/{n} jobs at --jobs {jobs}"
            );
            assert_eq!(resumed.resumed_jobs(), kept, "journal hits counted");
            assert!(resumed.take_quarantine().is_empty());
            // The journal is complete again after the resumed run.
            assert_eq!(journal_files(&run).len(), n);
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stale_fingerprint_forces_a_full_rerun() {
    let root = scratch("stale");
    let run = RunDir::at(root.clone());

    run.prepare(&manifest(SEED), false).expect("prepare");
    let first = durable_campaign(2, &run);
    let _ = measure(&first);
    assert_eq!(journal_files(&run).len(), 2 * PAGES);

    // Same run id, different seed in the fingerprint: the journal must
    // be wiped even under --resume, and nothing may be loaded from it.
    let kept = run.prepare(&manifest(SEED + 1), true).expect("prepare");
    assert!(!kept, "stale fingerprint must not keep the journal");
    assert!(
        journal_files(&run).is_empty(),
        "stale journal wiped before the rerun"
    );
    let rerun = durable_campaign(2, &run);
    let _ = measure(&rerun);
    assert_eq!(rerun.resumed_jobs(), 0, "nothing resumed across configs");
    assert_eq!(journal_files(&run).len(), 2 * PAGES);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn injected_panic_is_quarantined_while_the_rest_completes() {
    let panic_site = 1usize;
    let retry = RetryPolicy {
        max_attempts: 3,
        base_backoff_ms: 1,
        cap_backoff_ms: 4,
    };
    let build = || {
        let cfg = CampaignConfig::small(PAGES, SEED)
            .with_runner(RunnerConfig::default().with_jobs(2))
            .with_durable(Some(DurableContext::new(SEED).with_retry(retry.clone())))
            .with_inject_panic_site(Some(panic_site));
        MeasurementCampaign::new(cfg)
    };

    let c = build();
    let results = c.compare_vantage(Vantage::Utah);
    // The poisoned page is dropped whole; every other page completes.
    assert_eq!(results.len(), PAGES - 1);
    assert!(results.iter().all(|r| r.site != panic_site));

    let failures = c.take_quarantine();
    assert_eq!(failures.len(), 2, "both protocol sides quarantined");
    for f in &failures {
        assert_eq!(f.attempts, retry.max_attempts);
        assert!(!f.stalled);
        assert!(
            f.error.contains("deliberately injected panic"),
            "{}",
            f.error
        );
        // The repro command replays exactly this visit, chaos hook armed.
        assert!(f.repro.contains("--bin visit_one"), "{}", f.repro);
        assert!(f.repro.contains(&format!("--site {panic_site}")));
        assert!(f.repro.contains(&format!("--seed {SEED}")));
        assert!(f.repro.contains(&format!("H3CDN_PANIC_SITE={panic_site}")));
        // The recorded backoff schedule is the deterministic one.
        let section_hash = fnv1a64(f.section.as_bytes());
        assert_eq!(f.backoff_ms.len() as u32, retry.max_attempts - 1);
        for (i, &b) in f.backoff_ms.iter().enumerate() {
            assert_eq!(
                b,
                backoff_ms(SEED, section_hash, f.seq, i as u32 + 1, &retry)
            );
        }
    }

    // The failure set itself is deterministic: a second identical
    // campaign quarantines the same jobs with the same schedules.
    let again = build();
    let _ = again.compare_vantage(Vantage::Utah);
    let failures2 = again.take_quarantine();
    assert_eq!(failures.len(), failures2.len());
    for (a, b) in failures.iter().zip(&failures2) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.backoff_ms, b.backoff_ms);
        assert_eq!(a.error, b.error);
    }
}
