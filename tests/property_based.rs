//! Property-based tests over the full stack: random workload scales,
//! seeds, vantages and loss rates must never break the invariants the
//! analysis relies on.

use h3cdn::browser::{visit_page, ProtocolMode, VisitConfig};
use h3cdn::transport::tls::TicketStore;
use h3cdn::web::{generate, WorkloadSpec};
use h3cdn::Vantage;
use proptest::prelude::*;

fn vantage_strategy() -> impl Strategy<Value = Vantage> {
    prop_oneof![
        Just(Vantage::Utah),
        Just(Vantage::Wisconsin),
        Just(Vantage::Clemson),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case simulates full page loads
        ..ProptestConfig::default()
    })]

    #[test]
    fn corpus_marginals_hold_for_any_seed(seed in 0u64..10_000) {
        let corpus = generate(&WorkloadSpec::default().with_pages(24).with_seed(seed));
        prop_assert_eq!(corpus.pages.len(), 24);
        for page in &corpus.pages {
            prop_assert!(page.request_count() >= 20);
            prop_assert!(page.request_count() <= 400);
            // Root is always the origin document.
            prop_assert_eq!(page.resources[0].depth, 0);
            prop_assert!(page.resources[0].hosting.h3_available(),
                "H3-reachable site list: origins support H3");
            // Discovery DAG is well-formed.
            for r in page.resources.iter().skip(1) {
                let parent = r.parent.expect("sub-resources have parents");
                prop_assert!(parent < page.resources.len());
                prop_assert_eq!(page.resources[parent].depth + 1, r.depth);
            }
        }
    }

    #[test]
    fn any_page_completes_under_any_conditions(
        seed in 0u64..1_000,
        site in 0usize..6,
        vantage in vantage_strategy(),
        loss_decipercent in 0u32..20, // 0.0 .. 2.0 %
        h3 in proptest::bool::ANY,
    ) {
        let corpus = generate(&WorkloadSpec::default().with_pages(6).with_seed(seed));
        let mut cfg = VisitConfig::default()
            .with_mode(if h3 { ProtocolMode::H3Enabled } else { ProtocolMode::H2Only })
            .with_vantage(vantage)
            .with_loss_percent(loss_decipercent as f64 / 10.0);
        // Exact-loss accounting below requires disabling the natural
        // baseline loss the default config models.
        cfg.baseline_loss_percent = 0.0;
        let out = visit_page(&corpus.pages[site], &corpus.domains, &cfg, TicketStore::new());
        // The visit finished (visit_page asserts internally) and yields a
        // structurally complete HAR.
        prop_assert_eq!(out.har.entries.len(), corpus.pages[site].request_count());
        prop_assert!(out.har.plt_ms > 0.0);
        for e in &out.har.entries {
            prop_assert!(e.timing.total_ms() >= 0.0);
            prop_assert!(e.finished_ms() <= out.har.plt_ms + 0.5);
        }
        // Loss shows up in the packet stats exactly when configured.
        if loss_decipercent == 0 {
            prop_assert_eq!(out.stats.packets_lost, 0);
        }
    }

    #[test]
    fn ticket_state_only_grows_resumption(
        seed in 0u64..1_000,
    ) {
        let corpus = generate(&WorkloadSpec::default().with_pages(4).with_seed(seed));
        let cfg = VisitConfig::default();
        // Pass 1 populates tickets; pass 2 over the same pages must resume
        // at least one connection on every page (shared domains recur).
        let mut tickets = TicketStore::new();
        for page in &corpus.pages {
            tickets = visit_page(page, &corpus.domains, &cfg, tickets).tickets;
        }
        for page in &corpus.pages {
            let out = visit_page(page, &corpus.domains, &cfg, tickets);
            tickets = out.tickets;
            prop_assert!(
                out.har.resumed_connection_count() > 0,
                "revisited page {} resumed nothing",
                page.site
            );
        }
    }
}
