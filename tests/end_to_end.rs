//! Cross-crate integration: corpus → browser → HAR → analysis, end to
//! end, with the invariants that hold across layer boundaries.

use h3cdn::har::HarPage;
use h3cdn::{CampaignConfig, MeasurementCampaign, ProtocolMode, Vantage};

fn campaign(pages: usize, seed: u64) -> MeasurementCampaign {
    MeasurementCampaign::new(CampaignConfig::small(pages, seed))
}

#[test]
fn har_entries_account_for_every_corpus_resource() {
    let c = campaign(5, 1);
    for site in 0..5 {
        let page = &c.corpus().pages[site];
        let har = c.visit(site, Vantage::Utah, ProtocolMode::H3Enabled);
        assert_eq!(har.entries.len(), page.request_count());
        // Entry ids are exactly the resource ids, each exactly once.
        let mut ids: Vec<u64> = har.entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        let mut expect: Vec<u64> = page.resources.iter().map(|r| r.id).collect();
        expect.sort_unstable();
        assert_eq!(ids, expect);
        // Body bytes survive the round trip.
        let har_bytes: u64 = har.entries.iter().map(|e| e.body_bytes).sum();
        assert_eq!(har_bytes, page.total_bytes());
    }
}

#[test]
fn plt_equals_last_entry_finish() {
    let c = campaign(4, 2);
    for site in 0..4 {
        for mode in [ProtocolMode::H2Only, ProtocolMode::H3Enabled] {
            let har = c.visit(site, Vantage::Clemson, mode);
            assert!(
                (har.plt_ms - har.last_finish_ms()).abs() < 0.5,
                "onLoad is all-resources-complete: plt {} vs last finish {}",
                har.plt_ms,
                har.last_finish_ms()
            );
        }
    }
}

#[test]
fn locedge_classification_matches_corpus_hosting() {
    let c = campaign(5, 3);
    for site in 0..5 {
        let page = &c.corpus().pages[site];
        let har = c.visit(site, Vantage::Utah, ProtocolMode::H2Only);
        let by_id: std::collections::HashMap<u64, &h3cdn::web::Resource> =
            page.resources.iter().map(|r| (r.id, r)).collect();
        for e in &har.entries {
            let resource = by_id[&e.id];
            match resource.hosting.provider() {
                Some(p) => assert_eq!(
                    e.provider.as_deref(),
                    Some(p.name()),
                    "LocEdge must recover the hosting provider for {}",
                    e.domain
                ),
                None => assert!(e.provider.is_none(), "origin misclassified: {}", e.domain),
            }
        }
    }
}

#[test]
fn identical_campaigns_are_bit_identical() {
    let a = campaign(4, 9).visit(2, Vantage::Wisconsin, ProtocolMode::H3Enabled);
    let b = campaign(4, 9).visit(2, Vantage::Wisconsin, ProtocolMode::H3Enabled);
    let ja = serde_json::to_string(&a).expect("serializes");
    let jb = serde_json::to_string(&b).expect("serializes");
    assert_eq!(ja, jb, "separately built campaigns must replay identically");
}

#[test]
fn different_vantages_give_different_timings_same_structure() {
    let c = campaign(3, 4);
    let utah = c.visit(0, Vantage::Utah, ProtocolMode::H2Only);
    let clemson = c.visit(0, Vantage::Clemson, ProtocolMode::H2Only);
    assert_eq!(utah.entries.len(), clemson.entries.len());
    assert_ne!(utah.plt_ms, clemson.plt_ms, "paths differ per vantage");
    // Protocol choices are a corpus property, not a vantage property.
    for (a, b) in utah.entries.iter().zip(&clemson.entries) {
        assert_eq!(a.protocol, b.protocol);
    }
}

#[test]
fn h2_mode_uses_no_quic_anywhere() {
    let c = campaign(4, 5);
    for site in 0..4 {
        let har = c.visit(site, Vantage::Utah, ProtocolMode::H2Only);
        assert_eq!(har.entries_with_protocol("h3").count(), 0);
    }
}

#[test]
fn timing_phases_are_sane_across_the_corpus() {
    let c = campaign(5, 6);
    for site in 0..5 {
        for mode in [ProtocolMode::H2Only, ProtocolMode::H3Enabled] {
            let har: HarPage = c.visit(site, Vantage::Utah, mode);
            for e in &har.entries {
                assert!(e.timing.connect_ms >= 0.0);
                assert!(e.timing.blocked_ms >= 0.0);
                assert!(
                    e.timing.wait_ms >= 0.0,
                    "wait {} on {}",
                    e.timing.wait_ms,
                    e.url
                );
                assert!(e.timing.receive_ms >= 0.0);
                assert!(e.started_ms >= 0.0);
                assert!(e.finished_ms() <= har.plt_ms + 0.5);
                // Only connection creators report connect time.
                assert!(
                    !(e.timing.connect_ms > 0.0 && e.timing.blocked_ms > 0.0),
                    "an entry either created its connection or waited for one"
                );
            }
        }
    }
}

#[test]
fn experiment_pipeline_runs_on_shared_comparisons() {
    let c = campaign(8, 7);
    let cmps: Vec<_> = (0..8).map(|s| c.compare_page(s, Vantage::Utah)).collect();
    let fig6 = h3cdn_experiments::fig6::run(&cmps);
    let fig7 = h3cdn_experiments::fig7::run(&cmps);
    assert_eq!(fig6.groups.iter().map(|g| g.pages).sum::<usize>(), 8);
    assert_eq!(fig7.bins.iter().map(|b| b.pages).sum::<usize>(), 8);
    // Displays never panic and carry the headline labels.
    assert!(fig6.to_string().contains("Fig. 6(a)"));
    assert!(fig7.to_string().contains("Fig. 7(a/b)"));
}
