//! Adoption scan: crawl the corpus once with H3 enabled and tabulate
//! per-provider protocol adoption from LocEdge-classified HAR entries
//! (the Table II / Fig. 2 pipeline in miniature).
//!
//! ```text
//! cargo run --release --example adoption_scan
//! ```

use std::collections::BTreeMap;

use h3cdn::{CampaignConfig, MeasurementCampaign, ProtocolMode, Vantage};

fn main() {
    let campaign = MeasurementCampaign::new(CampaignConfig::small(25, 2024));

    let mut per_provider: BTreeMap<String, (usize, usize)> = BTreeMap::new(); // (h3, other)
    let mut totals = (0usize, 0usize, 0usize); // (h3, h2, h1)
    for site in 0..campaign.corpus().pages.len() {
        let har = campaign.visit(site, Vantage::Wisconsin, ProtocolMode::H3Enabled);
        for e in &har.entries {
            match e.protocol.as_str() {
                "h3" => totals.0 += 1,
                "h2" => totals.1 += 1,
                _ => totals.2 += 1,
            }
            if let Some(p) = &e.provider {
                let slot = per_provider.entry(p.clone()).or_default();
                if e.protocol == "h3" {
                    slot.0 += 1;
                } else {
                    slot.1 += 1;
                }
            }
        }
    }

    let all = (totals.0 + totals.1 + totals.2) as f64;
    println!("requests: {} total", all as usize);
    println!(
        "  h3 {:.1}%   h2 {:.1}%   http/1.x {:.1}%\n",
        totals.0 as f64 / all * 100.0,
        totals.1 as f64 / all * 100.0,
        totals.2 as f64 / all * 100.0
    );
    println!(
        "{:<12} {:>8} {:>8} {:>12}",
        "provider", "h3", "h2", "h3 rate"
    );
    for (p, (h3, h2)) in &per_provider {
        println!(
            "{:<12} {:>8} {:>8} {:>11.1}%",
            p,
            h3,
            h2,
            *h3 as f64 / (h3 + h2).max(1) as f64 * 100.0
        );
    }
}
