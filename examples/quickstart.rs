//! Quickstart: load one page over H2 and over H3 and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use h3cdn::{CampaignConfig, MeasurementCampaign, ProtocolMode, Vantage};

fn main() {
    // 1. Build a small measurement campaign: a 10-page corpus calibrated
    //    to the paper's composition statistics, probed from Utah.
    let campaign = MeasurementCampaign::new(CampaignConfig::small(10, 42));
    let page = &campaign.corpus().pages[0];
    println!(
        "page 0: {} requests, {:.0}% CDN, providers: {:?}",
        page.request_count(),
        page.cdn_fraction() * 100.0,
        page.providers_used()
    );

    // 2. Visit it once per protocol mode — the paper's paired setup.
    let h2 = campaign.visit(0, Vantage::Utah, ProtocolMode::H2Only);
    let h3 = campaign.visit(0, Vantage::Utah, ProtocolMode::H3Enabled);
    println!("PLT over H2-only : {:>8.1} ms", h2.plt_ms);
    println!("PLT with H3      : {:>8.1} ms", h3.plt_ms);
    println!("PLT reduction    : {:>8.1} ms", h2.plt_ms - h3.plt_ms);

    // 3. Inspect a few HAR entries, Chrome-style.
    println!("\nfirst five entries of the H3 visit:");
    for e in h3.entries.iter().take(5) {
        println!(
            "  {:>9} conn {:>6.1}ms wait {:>6.1}ms recv {:>6.1}ms  {} ({})",
            e.protocol,
            e.timing.connect_ms,
            e.timing.wait_ms,
            e.timing.receive_ms,
            e.domain,
            e.provider.as_deref().unwrap_or("origin"),
        );
    }

    // 4. The paired comparison as the analysis layer sees it.
    let cmp = campaign.compare_page(0, Vantage::Utah);
    println!(
        "\nreused connections: H2 {} vs H3 {} (difference {})",
        cmp.reused_h2,
        cmp.reused_h3,
        cmp.reused_difference()
    );
}
