//! Consecutive browsing: shared CDN providers let later pages resume TLS
//! sessions (0-RTT for H3), the paper's §VI-D scenario.
//!
//! ```text
//! cargo run --release --example consecutive_browsing
//! ```

use h3cdn::browser::{visit_consecutively, ProtocolMode, VisitConfig};
use h3cdn::transport::tls::TicketStore;
use h3cdn::web::{generate, Webpage, WorkloadSpec};

fn main() {
    let corpus = generate(&WorkloadSpec::default().with_pages(8).with_seed(7));
    let pages: Vec<&Webpage> = corpus.pages.iter().collect();

    // Browse the eight pages in order with H3 enabled, carrying the
    // session-ticket store across visits (connections themselves are torn
    // down between pages, exactly as in the paper).
    let cfg = VisitConfig::default().with_mode(ProtocolMode::H3Enabled);
    let (with_state, _) = visit_consecutively(&pages, &corpus.domains, &cfg, TicketStore::new());

    // Contrast: the same pages visited in isolation (state cleared).
    println!(
        "{:<6} {:>10} {:>12} {:>14} {:>12}",
        "page", "providers", "isolated", "consecutive", "resumed"
    );
    for (i, page) in corpus.pages.iter().enumerate() {
        let isolated =
            h3cdn::browser::visit_page(page, &corpus.domains, &cfg, TicketStore::new()).har;
        println!(
            "{:<6} {:>10} {:>10.1}ms {:>12.1}ms {:>12}",
            i,
            page.providers_used().len(),
            isolated.plt_ms,
            with_state[i].plt_ms,
            with_state[i].resumed_connection_count(),
        );
    }
    let saved: f64 = corpus
        .pages
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, page)| {
            let isolated =
                h3cdn::browser::visit_page(page, &corpus.domains, &cfg, TicketStore::new()).har;
            isolated.plt_ms - with_state[i].plt_ms
        })
        .sum::<f64>()
        / (corpus.pages.len() - 1) as f64;
    println!("\nmean PLT saved by resumption on pages 1..: {saved:.1} ms");
}
