//! Adaptive protocol selection — the research direction the paper's
//! §VII proposes: pick H2 or H3 per page from observable conditions, and
//! check the picks against ground-truth paired measurements.
//!
//! ```text
//! cargo run --release --example adaptive_selection
//! ```

use h3cdn::browser::ProtocolMode;
use h3cdn::selector::{PageConditions, ProtocolSelector};
use h3cdn::{CampaignConfig, MeasurementCampaign, Vantage};

fn main() {
    let campaign = MeasurementCampaign::new(CampaignConfig::small(12, 99));
    let selector = ProtocolSelector::default();

    let mut correct = 0usize;
    let mut regret_ms = 0.0f64;
    println!(
        "{:<6} {:>8} {:>10} {:>12} {:>10}",
        "page", "choice", "true red.", "best mode", "correct?"
    );
    for site in 0..campaign.corpus().pages.len() {
        let page = &campaign.corpus().pages[site];
        let choice = selector.select(&PageConditions::from_page(page, 0.0));
        let cmp = campaign.compare_page(site, Vantage::Utah);
        let best = if cmp.plt_reduction_ms >= 0.0 {
            ProtocolMode::H3Enabled
        } else {
            ProtocolMode::H2Only
        };
        let ok = choice == best;
        correct += usize::from(ok);
        if !ok {
            regret_ms += cmp.plt_reduction_ms.abs();
        }
        println!(
            "{:<6} {:>8} {:>8.1}ms {:>12} {:>10}",
            site,
            choice.label(),
            cmp.plt_reduction_ms,
            best.label(),
            if ok { "yes" } else { "no" }
        );
    }
    let n = campaign.corpus().pages.len();
    println!("\naccuracy: {correct}/{n} pages; total regret {regret_ms:.1} ms");
}
