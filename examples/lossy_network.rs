//! Loss sweep: how H3's stream multiplexing mitigates head-of-line
//! blocking as the path loss rate rises (the paper's Fig. 9 scenario,
//! `tc`-style).
//!
//! ```text
//! cargo run --release --example lossy_network
//! ```

use h3cdn::browser::{visit_page, ProtocolMode, VisitConfig};
use h3cdn::transport::tls::TicketStore;
use h3cdn::web::{generate, WorkloadSpec};

fn main() {
    let corpus = generate(&WorkloadSpec::default().with_pages(6).with_seed(77));

    println!(
        "{:<8} {:>12} {:>12} {:>14}",
        "loss %", "H2 PLT", "H3 PLT", "reduction"
    );
    for loss in [0.0, 0.5, 1.0, 2.0] {
        let mut h2_total = 0.0;
        let mut h3_total = 0.0;
        for page in &corpus.pages {
            let h2 = visit_page(
                page,
                &corpus.domains,
                &VisitConfig::default()
                    .with_mode(ProtocolMode::H2Only)
                    .with_loss_percent(loss),
                TicketStore::new(),
            )
            .har;
            let h3 = visit_page(
                page,
                &corpus.domains,
                &VisitConfig::default()
                    .with_mode(ProtocolMode::H3Enabled)
                    .with_loss_percent(loss),
                TicketStore::new(),
            )
            .har;
            h2_total += h2.plt_ms;
            h3_total += h3.plt_ms;
        }
        let n = corpus.pages.len() as f64;
        println!(
            "{:<8} {:>10.1}ms {:>10.1}ms {:>12.1}ms",
            loss,
            h2_total / n,
            h3_total / n,
            (h2_total - h3_total) / n
        );
    }
    println!("\nH3's advantage grows with loss: one lost TCP segment stalls every");
    println!("H2 stream, while a lost QUIC packet stalls only the streams it carried.");
}
